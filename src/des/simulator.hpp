#pragma once

/// \file simulator.hpp
/// Discrete-event simulation kernel.
///
/// This is the substrate standing in for the SimGrid toolkit the paper used:
/// a simulated clock, a pending-event queue ordered by (time, insertion
/// sequence), and callback-based event handlers. Ties are broken by insertion
/// order, which makes every simulation fully deterministic.
///
/// Internals are built for throughput — every paper figure is thousands of
/// simulated runs, so this inner loop bounds sweep capacity:
///
///   - The pending queue is an *indexed 4-ary heap*: flatter than a binary
///     heap (fewer cache-missing levels at depth), and because every record
///     knows its heap position, cancel() is a true O(log n) removal — no
///     tombstones, no hash-set bookkeeping on the hot path. Heap entries
///     carry their sort key (time, sequence) inline, so sifting compares
///     contiguous memory and never dereferences into the slab.
///   - Event records live in a slab with a free list. A retired slot (fired
///     or cancelled) is reused by the next schedule_at(), so steady-state
///     simulation performs no per-event allocation at all; callbacks are
///     EventCallback (64 bytes inline — see event_callback.hpp), so the
///     engine's lambdas never touch the heap either. The slab is split
///     structure-of-arrays style: 8-byte {generation, heap_pos} metadata in
///     one dense array (the part sift loops write), callbacks in another
///     (touched once at schedule and once at fire/cancel).
///   - EventId packs {generation, slot}: cancel() validates a handle with
///     two array reads instead of a hash lookup, and stale handles (fired,
///     cancelled, or reused slots) are rejected exactly, with no memory of
///     retired ids ever accumulating.
///   - Observation is zero-cost when off: without an attached EventObserver
///     the kernel's only instrumentation is its O(1) counters (scheduled /
///     executed / cancelled / queue-depth high-water, all maintained
///     natively). The observer hook is one predictable branch per event;
///     auditors (check::SimulatorAuditor) and probes pay for themselves only
///     when attached.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "des/event_callback.hpp"

namespace rumr::des {

/// Simulated time, in seconds.
using SimTime = double;

/// Handle for a scheduled event, usable with Simulator::cancel(). Packs
/// {generation:32, slot:32}; 0 is never a valid handle, so it can serve as
/// an engine-side "no event" sentinel. Handles are exact: a handle stays
/// cancellable until its event fires or is cancelled, and is dead forever
/// after — even once its slot is reused.
using EventId = std::uint64_t;

/// Observation hooks for auditing the kernel (see check/des_audit.hpp).
///
/// An observer sees every lifecycle transition: schedule (with the time the
/// caller *requested*, before any clamping), execute, and cancel. The kernel
/// holds a non-owning pointer; a null observer costs one branch per event.
class EventObserver {
 public:
  virtual ~EventObserver() = default;

  /// A new event was scheduled. `requested` is the caller's time argument
  /// verbatim; `now` the simulated clock at the call.
  virtual void on_schedule(EventId id, SimTime requested, SimTime now) = 0;

  /// An event's handler is about to run at simulated time `at`.
  virtual void on_execute(EventId id, SimTime at) = 0;

  /// cancel(id) was called; `was_pending` is its return value.
  virtual void on_cancel(EventId id, bool was_pending) = 0;
};

/// Callback-driven discrete-event simulator.
///
/// Usage: schedule initial events, then call run(). Handlers may schedule
/// further events. Event handlers run strictly in non-decreasing time order;
/// events at equal times run in the order they were scheduled (FIFO).
class Simulator {
 public:
  using Callback = EventCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Schedules `callback` to fire at absolute time `t`. Requires t >= now().
  /// Returns a handle that can be passed to cancel().
  EventId schedule_at(SimTime t, Callback callback);

  /// Schedules `callback` to fire `delay` seconds from now. Requires delay >= 0.
  EventId schedule_in(SimTime delay, Callback callback);

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled,
  /// or unknown event is a harmless no-op. Returns true if the event was
  /// pending.
  bool cancel(EventId id);

  /// Current simulated time. Starts at 0.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Number of events whose handlers have been executed.
  [[nodiscard]] std::size_t events_processed() const noexcept { return processed_; }

  /// Number of events ever scheduled.
  [[nodiscard]] std::size_t events_scheduled() const noexcept { return scheduled_; }

  /// Number of events successfully cancelled.
  [[nodiscard]] std::size_t events_cancelled() const noexcept { return cancel_count_; }

  /// Number of events still pending. Exact: cancelled events leave the queue
  /// immediately.
  [[nodiscard]] std::size_t events_pending() const noexcept { return heap_.size(); }

  /// Highest pending-event count ever reached. Maintained natively (one
  /// compare per schedule) so observability needs no observer on the hot
  /// path; matches what obs::DesProbe would measure.
  [[nodiscard]] std::size_t queue_depth_high_water() const noexcept { return high_water_; }

  /// Installs (or clears, with nullptr) the audit observer. Not owned.
  void set_observer(EventObserver* observer) noexcept { observer_ = observer; }

  /// Executes the single next pending event. Returns false if none remain.
  bool step();

  /// Runs until the event queue is empty or `max_events` handlers have fired.
  /// Returns the number of events executed by this call. The default cap is a
  /// runaway-simulation guard, far above any legitimate run in this project.
  std::size_t run(std::size_t max_events = kDefaultMaxEvents);

  /// Runs until the queue is empty or simulated time would exceed `deadline`.
  /// Events scheduled exactly at `deadline` are executed.
  std::size_t run_until(SimTime deadline, std::size_t max_events = kDefaultMaxEvents);

  static constexpr std::size_t kDefaultMaxEvents = 500'000'000;

 private:
  /// Per-slot bookkeeping. `generation` validates handles; `heap_pos` makes
  /// cancel() an indexed removal. Kept separate from the callback array so
  /// the sift loops' random heap_pos updates hit a dense array packing eight
  /// slots per cache line instead of dragging 80-byte records through the
  /// cache. The sort key lives in the heap entry, not here.
  struct SlotMeta {
    std::uint32_t generation = 0;
    std::uint32_t heap_pos = kNotPending;
  };

  /// One heap element: the sort key plus the slot it refers to, packed into
  /// 16 bytes so four children span exactly one cache line. `key` is
  /// {seq:32, slot:32}: seq (not the event id) carries the FIFO tie-break —
  /// slots are reused, so id order does not track insertion order, but seq
  /// increments on every schedule, making the packed key strictly increasing
  /// in schedule order. schedule_at() fails loudly if a single simulator
  /// ever issues 2^32 schedules (hours of kernel time; sweeps use a fresh
  /// simulator per run). Keeping the key inline means sift comparisons read
  /// only the (contiguous) heap array.
  struct HeapEntry {
    SimTime time;
    std::uint64_t key;

    [[nodiscard]] std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(key & 0xFFFFFFFFU);
    }
  };

  static constexpr std::uint32_t kNotPending = 0xFFFFFFFFU;
  /// Heap arity. 4 keeps the tree half as deep as a binary heap, and with
  /// 16-byte entries the four children of a node fill exactly one cache
  /// line. (8 was measured slower: fewer levels, but each level's child scan
  /// spans two lines and does twice the comparisons.)
  static constexpr std::size_t kArity = 4;

  [[nodiscard]] static EventId make_id(std::uint32_t generation, std::uint32_t slot) noexcept {
    return (static_cast<EventId>(generation) << 32U) | slot;
  }

  /// Strict queue order: (time, insertion sequence).
  [[nodiscard]] static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  void sift_up(std::size_t pos) noexcept;
  void sift_down(std::size_t pos) noexcept;
  /// Removes the root (bottom-up: hole walks down min-children, the tail
  /// entry refills it at the bottom). Does not touch the removed root's
  /// heap_pos.
  void pop_root() noexcept;
  /// Removes the heap entry at `pos`, restoring the heap property. Does not
  /// touch the removed record's heap_pos.
  void heap_remove(std::size_t pos) noexcept;

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t scheduled_ = 0;
  std::size_t processed_ = 0;
  std::size_t cancel_count_ = 0;
  std::size_t high_water_ = 0;
  EventObserver* observer_ = nullptr;

  std::vector<SlotMeta> slots_;            ///< Handle/heap-index bookkeeping.
  std::vector<EventCallback> callbacks_;   ///< Pooled callbacks, parallel to slots_.
  std::vector<std::uint32_t> free_slots_;  ///< Retired slots awaiting reuse.
  std::vector<HeapEntry> heap_;            ///< Indexed 4-ary heap, keys inline.
};

}  // namespace rumr::des
