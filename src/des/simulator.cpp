#include "des/simulator.hpp"

#include <cassert>
#include <utility>

#include "check/check.hpp"

namespace rumr::des {

EventId Simulator::schedule_at(SimTime t, Callback callback) {
  RUMR_CHECK(callback != nullptr, "event callback must be callable");
  const EventId id = next_id_++;
  if (observer_ != nullptr) observer_->on_schedule(id, t, now_);
  RUMR_CHECK(t >= now_, "cannot schedule an event in the simulated past");
  queue_.push(PendingEvent{t < now_ ? now_ : t, id, std::move(callback)});
  live_.insert(id);
  return id;
}

EventId Simulator::schedule_in(SimTime delay, Callback callback) {
  RUMR_CHECK(delay >= 0.0, "negative event delay");
  return schedule_at(now_ + (delay < 0.0 ? 0.0 : delay), std::move(callback));
}

bool Simulator::cancel(EventId id) {
  // We cannot remove from the middle of the heap; mark and skip at pop time.
  // Only a live id may grow cancelled_ — its heap entry is guaranteed to pop
  // eventually and retire the tombstone, keeping the set bounded.
  const bool was_pending = live_.erase(id) == 1;
  if (was_pending) {
    cancelled_.insert(id);
    ++cancel_count_;
  }
  if (observer_ != nullptr) observer_->on_cancel(id, was_pending);
  RUMR_CHECK_EXPENSIVE(live_.size() + cancelled_.size() == queue_.size(),
                       "event bookkeeping out of sync after cancel");
  return was_pending;
}

void Simulator::drop_cancelled_head() {
  while (!queue_.empty()) {
    if (auto it = cancelled_.find(queue_.top().id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    break;
  }
}

bool Simulator::step() {
  drop_cancelled_head();
  if (queue_.empty()) {
    RUMR_CHECK(live_.empty() && cancelled_.empty(),
               "event bookkeeping out of sync: drained queue with live ids");
    return false;
  }
  PendingEvent ev = queue_.top();
  queue_.pop();
  live_.erase(ev.id);
  RUMR_CHECK_EXPENSIVE(live_.size() + cancelled_.size() == queue_.size(),
                       "event bookkeeping out of sync after pop");
  assert(ev.time >= now_ && "heap yielded an event from the simulated past");
  now_ = ev.time;
  ++processed_;
  if (observer_ != nullptr) observer_->on_execute(ev.id, ev.time);
  ev.callback();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(SimTime deadline, std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events) {
    // Peek through cancelled entries without executing anything.
    drop_cancelled_head();
    if (queue_.empty() || queue_.top().time > deadline) break;
    if (!step()) break;
    ++executed;
  }
  return executed;
}

}  // namespace rumr::des
