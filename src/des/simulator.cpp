#include "des/simulator.hpp"

#include <cassert>
#include <utility>

namespace rumr::des {

EventId Simulator::schedule_at(SimTime t, Callback callback) {
  assert(t >= now_ && "cannot schedule an event in the simulated past");
  assert(callback && "event callback must be callable");
  const EventId id = next_id_++;
  queue_.push(PendingEvent{t < now_ ? now_ : t, id, std::move(callback)});
  return id;
}

EventId Simulator::schedule_in(SimTime delay, Callback callback) {
  assert(delay >= 0.0 && "negative event delay");
  return schedule_at(now_ + (delay < 0.0 ? 0.0 : delay), std::move(callback));
}

bool Simulator::cancel(EventId id) {
  // We cannot remove from the middle of the heap; mark and skip at pop time.
  if (id == 0 || id >= next_id_) return false;
  return cancelled_.insert(id).second;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    PendingEvent ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++processed_;
    ev.callback();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(SimTime deadline, std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && !queue_.empty()) {
    // Peek through cancelled entries without executing anything.
    while (!queue_.empty()) {
      const PendingEvent& top = queue_.top();
      if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        queue_.pop();
        continue;
      }
      break;
    }
    if (queue_.empty() || queue_.top().time > deadline) break;
    if (!step()) break;
    ++executed;
  }
  return executed;
}

}  // namespace rumr::des
