#include "des/simulator.hpp"

#include <cassert>
#include <utility>

#include "check/check.hpp"

namespace rumr::des {

EventId Simulator::schedule_at(SimTime t, Callback callback) {
  RUMR_CHECK(static_cast<bool>(callback), "event callback must be callable");

  // Peek (without committing) at the slot this event would occupy, so the id
  // exists for the observer and nothing leaks if the in-the-past check
  // throws. Generations start at 1, so no valid id is ever 0.
  const bool reuse = !free_slots_.empty();
  const std::uint32_t slot =
      reuse ? free_slots_.back() : static_cast<std::uint32_t>(slots_.size());
  const std::uint32_t generation = (reuse ? slots_[slot].generation : 0) + 1;
  const EventId id = make_id(generation, slot);

  ++scheduled_;
  if (observer_ != nullptr) observer_->on_schedule(id, t, now_);
  RUMR_CHECK(t >= now_, "cannot schedule an event in the simulated past");

  if (reuse) {
    free_slots_.pop_back();
    slots_[slot].generation = generation;
    callbacks_[slot] = std::move(callback);
  } else {
    RUMR_CHECK(slots_.size() < kNotPending, "event slab exhausted");
    slots_.push_back({generation, kNotPending});
    callbacks_.push_back(std::move(callback));
  }

  RUMR_CHECK((next_seq_ >> 32U) == 0, "event sequence space exhausted");
  const std::size_t pos = heap_.size();
  heap_.push_back({t < now_ ? now_ : t, (next_seq_++ << 32U) | slot});
  slots_[slot].heap_pos = static_cast<std::uint32_t>(pos);
  sift_up(pos);

  if (heap_.size() > high_water_) high_water_ = heap_.size();
  return id;
}

EventId Simulator::schedule_in(SimTime delay, Callback callback) {
  RUMR_CHECK(delay >= 0.0, "negative event delay");
  return schedule_at(now_ + (delay < 0.0 ? 0.0 : delay), std::move(callback));
}

bool Simulator::cancel(EventId id) {
  // Decode the handle and validate it against the slab: the slot must exist,
  // the generation must match (a reused slot invalidates old handles), and
  // the record must still be in the heap (fired events are not pending).
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFU);
  const auto generation = static_cast<std::uint32_t>(id >> 32U);
  bool was_pending = false;
  if (generation != 0 && slot < slots_.size()) {
    SlotMeta& meta = slots_[slot];
    if (meta.generation == generation && meta.heap_pos != kNotPending) {
      was_pending = true;
      heap_remove(meta.heap_pos);
      meta.heap_pos = kNotPending;
      callbacks_[slot].reset();  // Release captured resources now, not at reuse.
      free_slots_.push_back(slot);
      ++cancel_count_;
    }
  }
  if (observer_ != nullptr) observer_->on_cancel(id, was_pending);
  RUMR_CHECK_EXPENSIVE(heap_.size() + free_slots_.size() == slots_.size(),
                       "event bookkeeping out of sync after cancel");
  return was_pending;
}

void Simulator::sift_up(std::size_t pos) noexcept {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!earlier(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot()].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  slots_[entry.slot()].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::sift_down(std::size_t pos) noexcept {
  const HeapEntry entry = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = pos * kArity + 1;
    if (first >= n) break;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot()].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  slots_[entry.slot()].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::pop_root() noexcept {
  const HeapEntry tail = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Walk the hole left at the root down along minimum children without
  // comparing against `tail`: the tail came from the deepest level, so it
  // almost always belongs back at the bottom, and the final sift_up is a
  // single compare in the common case. This is the classic bottom-up pop —
  // one comparison per level fewer than sifting tail down from the root.
  std::size_t pos = 0;
  for (;;) {
    const std::size_t first = pos * kArity + 1;
    if (first >= n) break;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot()].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = tail;
  slots_[tail.slot()].heap_pos = static_cast<std::uint32_t>(pos);
  sift_up(pos);
}

void Simulator::heap_remove(std::size_t pos) noexcept {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;
  heap_[pos] = last;
  slots_[last.slot()].heap_pos = static_cast<std::uint32_t>(pos);
  // The displaced element may belong above or below its new position; one of
  // these is a no-op.
  sift_up(pos);
  sift_down(slots_[last.slot()].heap_pos);
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  const std::uint32_t slot = heap_[0].slot();
  assert(heap_[0].time >= now_ && "heap yielded an event from the simulated past");
  now_ = heap_[0].time;

#if defined(__GNUC__) || defined(__clang__)
  // The winning callback lives at an effectively random offset in a large
  // array, so it is usually a cache miss. Kick the fetch off now and do the
  // heap restructuring while it is in flight; the move below then hits.
  __builtin_prefetch(&callbacks_[slot]);
  __builtin_prefetch(reinterpret_cast<const char*>(&callbacks_[slot]) + 64);
#endif
  pop_root();

  // Move the callback out and retire the slot *before* invoking: the handler
  // may schedule new events, and handing it this just-freed, cache-warm slot
  // is exactly what makes event chains allocation-free.
  Callback callback = std::move(callbacks_[slot]);
  slots_[slot].heap_pos = kNotPending;
  free_slots_.push_back(slot);
  ++processed_;
  RUMR_CHECK_EXPENSIVE(heap_.size() + free_slots_.size() == slots_.size(),
                       "event bookkeeping out of sync after pop");

  if (observer_ != nullptr) observer_->on_execute(make_id(slots_[slot].generation, slot), now_);
  callback();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(SimTime deadline, std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events) {
    if (heap_.empty() || heap_[0].time > deadline) break;
    if (!step()) break;
    ++executed;
  }
  return executed;
}

}  // namespace rumr::des
