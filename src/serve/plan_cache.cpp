#include "serve/plan_cache.hpp"

#include <exception>
#include <utility>

#include "serve/protocol.hpp"

namespace rumr::serve {

PlanCache::PlanCache(const PlanCacheOptions& options) {
  const std::size_t count = options.shards == 0 ? 1 : options.shards;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    // Apportion both budgets exactly: shard i gets the quotient plus one
    // unit of the remainder, so the shard budgets sum to the global ones.
    shard->capacity = options.capacity / count + (i < options.capacity % count ? 1 : 0);
    shard->max_bytes = options.max_bytes / count + (i < options.max_bytes % count ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

void PlanCache::evict_to_budget(Shard& shard) {
  while (!shard.lru.empty() && (shard.stats.entries > shard.capacity ||
                                shard.stats.bytes_cached > shard.max_bytes)) {
    const auto oldest = shard.lru.begin();
    const std::uint64_t fingerprint = oldest->second;
    shard.lru.erase(oldest);
    const auto it = shard.entries.find(fingerprint);
    shard.stats.bytes_cached -= it->second.bytes;
    shard.entries.erase(it);
    shard.stats.entries -= 1;
    shard.stats.evictions += 1;
  }
}

std::shared_ptr<const std::string> PlanCache::get_or_compute(const std::string& canonical_key,
                                                             const Solver& solve) {
  const std::uint64_t fingerprint = fnv1a64(canonical_key);
  Shard& shard = *shards_[fingerprint % shards_.size()];

  enum class Path : unsigned char { kHit, kCollision, kSolve };
  Path path = Path::kSolve;
  std::shared_future<PlanPtr> waiting;
  std::promise<PlanPtr> promise;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stats.lookups += 1;
    const auto it = shard.entries.find(fingerprint);
    if (it != shard.entries.end() && it->second.key == canonical_key) {
      // Hit — including a waiter that arrives while the first solver is
      // still running (the pending entry carries the future it will fill).
      shard.stats.hits += 1;
      Entry& entry = it->second;
      if (entry.ready) {
        shard.lru.erase(entry.tick);
        entry.tick = shard.next_tick++;
        shard.lru.emplace(entry.tick, fingerprint);
      }
      waiting = entry.plan;
      path = Path::kHit;
    } else if (it != shard.entries.end()) {
      // Same fingerprint, different canonical bytes: a genuine 64-bit
      // collision. Solve uncached — correctness over reuse — and count it.
      shard.stats.misses += 1;
      shard.stats.collisions += 1;
      path = Path::kCollision;
    } else {
      // First miss installs the pending (pinned) entry, then solves
      // outside the lock.
      shard.stats.misses += 1;
      Entry entry;
      entry.key = canonical_key;
      entry.plan = promise.get_future().share();
      shard.entries.emplace(fingerprint, std::move(entry));
    }
  }

  // Waiters block outside any lock; get() rethrows the solver's failure.
  if (path == Path::kHit) return waiting.get();
  if (path == Path::kCollision) return std::make_shared<const std::string>(solve());

  // Exactly-once owner of this key's solve.
  PlanPtr plan;
  try {
    plan = std::make_shared<const std::string>(solve());
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stats.failed_solves += 1;
    // The pending entry was pinned, so it is still ours to remove; a later
    // lookup of this key retries the solve.
    shard.entries.erase(fingerprint);
    throw;
  }
  promise.set_value(plan);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    Entry& entry = shard.entries.at(fingerprint);
    entry.ready = true;
    entry.bytes = canonical_key.size() + plan->size();
    entry.tick = shard.next_tick++;
    shard.lru.emplace(entry.tick, fingerprint);
    shard.stats.insertions += 1;
    shard.stats.entries += 1;
    shard.stats.bytes_cached += entry.bytes;
    evict_to_budget(shard);
  }
  return plan;
}

obs::CacheStats PlanCache::stats() const {
  obs::CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.merge(shard->stats);
  }
  return total;
}

}  // namespace rumr::serve
