#include "serve/server.hpp"

#include <deque>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "check/trace_audit.hpp"
#include "config/run_description.hpp"
#include "sim/master_worker.hpp"
#include "sim/trace.hpp"
#include "util/json_lite.hpp"

namespace rumr::serve {
namespace {

void append_hex64(std::string& out, std::uint64_t value) {
  constexpr char kHexDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHexDigits[(value >> shift) & 0xfu]);
  }
}

/// Serializes one solved query into its plan object — the byte string the
/// cache stores and every response (cold or warm) splices in verbatim.
std::string serialize_plan(const sim::SimResult& result, std::uint64_t fingerprint) {
  std::string plan = "{\"makespan\":";
  util::append_json_number(plan, result.makespan);
  plan += ",\"chunks\":[";
  bool first = true;
  for (const sim::TraceSpan& span : result.trace.spans()) {
    if (span.kind != sim::SpanKind::kUplink) continue;
    if (!first) plan += ',';
    first = false;
    plan += '[';
    plan += std::to_string(span.worker);
    plan += ',';
    util::append_json_number(plan, span.chunk);
    plan += ']';
  }
  plan += "],\"dispatches\":";
  plan += std::to_string(result.chunks_dispatched);
  plan += ",\"completions\":";
  plan += std::to_string(result.metrics.engine.completions);
  plan += ",\"events\":";
  plan += std::to_string(result.events);
  plan += ",\"uplink_utilization\":";
  util::append_json_number(plan, result.metrics.engine.uplink_utilization);
  plan += ",\"mean_worker_utilization\":";
  util::append_json_number(plan, result.metrics.engine.mean_worker_utilization);
  plan += ",\"fingerprint\":\"";
  append_hex64(plan, fingerprint);
  plan += "\"}";
  return plan;
}

std::string join_problems(const std::vector<std::string>& problems) {
  std::string joined = "invalid serve options:";
  for (const std::string& problem : problems) {
    joined += "\n  - ";
    joined += problem;
  }
  return joined;
}

}  // namespace

std::vector<std::string> ServerOptions::validate() const {
  std::vector<std::string> problems;
  if (cache_shards == 0) problems.push_back("cache_shards must be >= 1");
  if (admission == jobs::AdmissionPolicy::kShedOldest && queue_capacity == 0) {
    problems.push_back(
        "admission 'shed' requires queue_capacity >= 1 (an empty queue has nothing to shed)");
  }
  return problems;
}

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(PlanCacheOptions{options.cache_capacity, options.cache_max_bytes,
                              options.cache_shards == 0 ? 1 : options.cache_shards}),
      pool_(options.threads) {
  const std::vector<std::string> problems = options.validate();
  if (!problems.empty()) throw std::invalid_argument(join_problems(problems));
}

Server::~Server() { wait_idle(); }

std::future<std::string> Server::submit(std::string payload) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();

  Request request;
  try {
    request = parse_request(payload);
  } catch (const ProtocolError& e) {
    // Well-framed but not a request: answered in place, counted as a
    // protocol error. The envelope never parsed, so no id is known.
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.received += 1;
    stats_.protocol_errors += 1;
    stats_.admitted += 1;
    stats_.completed += 1;
    promise.set_value(make_error_response(-1, e.what()));
    return future;
  }

  if (request.type == RequestType::kPing || request.type == RequestType::kStats) {
    // Control requests bypass the queue: they must answer even when the
    // executor is saturated (that is what makes stats useful under load).
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.received += 1;
      stats_.admitted += 1;
      stats_.completed += 1;
    }
    if (request.type == RequestType::kPing) {
      promise.set_value(make_pong_response(request.id));
    } else {
      promise.set_value("{\"type\":\"stats\",\"id\":" + std::to_string(request.id) +
                        ",\"stats\":" + obs::to_json(stats()) + "}");
    }
    return future;
  }

  Pending item;
  item.request = std::move(request);
  item.promise = std::move(promise);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    item.seq = next_seq_++;
    stats_.received += 1;
    if (in_service_ < pool_.thread_count()) {
      in_service_ += 1;
      stats_.admitted += 1;
    } else if (queue_.size() < options_.queue_capacity) {
      // Enqueued, not yet admitted: the ledger's terminal buckets are
      // decided when the request is picked up (admitted) or dropped (shed).
      queue_.push_back(std::move(item));
      if (queue_.size() > stats_.queue_depth_high_water) {
        stats_.queue_depth_high_water = queue_.size();
      }
      return future;
    } else if (options_.admission == jobs::AdmissionPolicy::kRejectNew) {
      stats_.rejected += 1;
      item.promise.set_value(
          make_error_response(item.request.id, "rejected: request queue is full"));
      return future;
    } else {
      // kShedOldest: the longest-waiting request makes room for the arrival.
      auto oldest = queue_.begin();
      for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
        if (it->seq < oldest->seq) oldest = it;
      }
      stats_.shed += 1;
      oldest->promise.set_value(
          make_error_response(oldest->request.id, "shed: displaced by a newer request"));
      queue_.erase(oldest);
      queue_.push_back(std::move(item));
      return future;
    }
  }

  // Admitted for immediate service: hand the request to the executor pool.
  auto shared = std::make_shared<Pending>(std::move(item));
  pool_.submit([this, shared]() { worker_run(std::move(*shared)); });
  return future;
}

std::string Server::handle(std::string payload) { return submit(std::move(payload)).get(); }

void Server::worker_run(Pending item) {
  for (;;) {
    std::string response;
    try {
      response = execute_batch(item.request);
    } catch (const std::exception& e) {
      response = make_error_response(item.request.id, e.what());
    }
    {
      // Counted before the promise resolves, so a client that just got its
      // response (and immediately reads stats()) sees a consistent ledger.
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.completed += 1;
    }
    item.promise.set_value(std::move(response));

    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) {
      in_service_ -= 1;
      if (in_service_ == 0) idle_cv_.notify_all();
      return;
    }
    const auto next = pick_next_locked();
    stats_.admitted += 1;
    item = std::move(*next);
    queue_.erase(next);
  }
}

std::list<Server::Pending>::iterator Server::pick_next_locked() {
  auto best = queue_.begin();
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    switch (options_.discipline) {
      case jobs::QueueDiscipline::kFcfs:
        if (it->seq < best->seq) best = it;
        break;
      case jobs::QueueDiscipline::kSjf:
        // "Shortest" for a what-if batch is its query count.
        if (it->request.queries.size() < best->request.queries.size() ||
            (it->request.queries.size() == best->request.queries.size() &&
             it->seq < best->seq)) {
          best = it;
        }
        break;
      case jobs::QueueDiscipline::kPriority:
        if (it->request.priority > best->request.priority ||
            (it->request.priority == best->request.priority && it->seq < best->seq)) {
          best = it;
        }
        break;
    }
  }
  return best;
}

std::string Server::execute_batch(const Request& request) {
  const std::vector<QuerySlot>& slots = request.queries;
  std::vector<std::string> results(slots.size());
  std::size_t parse_failures = 0;
  for (const QuerySlot& slot : slots) {
    if (!slot.query) ++parse_failures;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.queries += slots.size();
    stats_.query_errors += parse_failures;
  }

  const auto run_slot = [&](std::size_t i) {
    const QuerySlot& slot = slots[i];
    if (!slot.query) {
      results[i] = make_query_error(slot.error);
      return;
    }
    const std::string key = canonical_query_key(*slot.query);
    try {
      results[i] =
          *cache_.get_or_compute(key, [&] { return solve_query(*slot.query, fnv1a64(key)); });
    } catch (const std::exception& e) {
      // Solver failures (unknown algorithm, invalid platform, audit
      // violation) answer this query; the rest of the batch is unaffected.
      results[i] = make_query_error(e.what());
    }
  };

  const std::size_t width =
      options_.batch_threads == 0 ? sweep::default_thread_count() : options_.batch_threads;
  if (width > 1 && slots.size() > 1) {
    sweep::parallel_for(slots.size(), run_slot, width);
  } else {
    for (std::size_t i = 0; i < slots.size(); ++i) run_slot(i);
  }
  return make_result_response(request.id, results);
}

std::string Server::solve_query(const Query& query, std::uint64_t fingerprint) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.solves += 1;
  }
  const platform::StarPlatform platform{std::vector<platform::WorkerSpec>(query.workers)};
  const auto policy =
      config::make_policy(query.algorithm, platform, query.workload, query.known_error);
  sim::SimOptions sim_options = sim::SimOptions::with_error(query.error, query.seed);
  sim_options.record_trace = true;
  sim_options.uplink_channels = query.uplink_channels;
  sim_options.output_ratio = query.output_ratio;
  sim_options.worker_buffer_capacity = query.worker_buffer_capacity;
  const sim::SimResult result = sim::simulate(platform, *policy, sim_options);
  if (options_.audit) {
    check::TraceAuditOptions audit_options;
    audit_options.work_tolerance = sim_options.work_tolerance;
    audit_options.uplink_channels = sim_options.uplink_channels;
    check::audit_sim_result(result, platform, query.workload, audit_options).throw_if_failed();
  }
  return serialize_plan(result, fingerprint);
}

void Server::serve_stream(std::istream& in, std::ostream& out) {
  // Responses leave in request order; admission and execution overlap across
  // the in-flight window.
  constexpr std::size_t kMaxInFlight = 1024;
  std::deque<std::future<std::string>> in_flight;
  const auto drain_one = [&] {
    write_frame(out, in_flight.front().get());
    in_flight.pop_front();
  };
  try {
    for (;;) {
      std::optional<std::string> payload = read_frame(in);
      if (!payload) break;
      in_flight.push_back(submit(std::move(*payload)));
      while (in_flight.size() >= kMaxInFlight) drain_one();
    }
    while (!in_flight.empty()) drain_one();
  } catch (const ProtocolError& e) {
    // Framing is lost: answer what was in flight, report, and close.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.protocol_errors += 1;
    }
    while (!in_flight.empty()) drain_one();
    write_frame(out, make_error_response(-1, e.what()));
  }
  out.flush();
}

void Server::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_service_ == 0 && queue_.empty(); });
}

obs::ServeStats Server::stats() const {
  obs::ServeStats snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = stats_;
  }
  snapshot.plan_cache = cache_.stats();
  return snapshot;
}

}  // namespace rumr::serve
