#pragma once

/// \file server.hpp
/// The what-if scheduling server: concurrent request execution over the
/// content-addressed plan cache, with request-level admission control.
///
/// The server is deliberately an instance of the admission system the
/// library simulates: requests arrive, at most `threads` are in service, up
/// to `queue_capacity` wait, and an arrival past that is handled by the
/// same jobs:: vocabulary (reject-new or shed-oldest) under the same queue
/// disciplines (FCFS, shortest-batch-first, priority). The ledger is
/// audited by check::audit_serve_stats.
///
/// Execution path per query: canonicalize -> plan-cache lookup -> on miss,
/// build the platform, instantiate the named policy (config::make_policy),
/// run sim::simulate with a recorded trace, audit, and serialize the chunk
/// plan. The cache stores the serialized bytes, so a warm response is
/// byte-identical to the cold one by construction.
///
/// Determinism: no wall-clock, no ambient randomness — every response is a
/// pure function of the request bytes (and, for "stats" requests, of the
/// request history).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <istream>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "jobs/job_manager.hpp"
#include "obs/metrics.hpp"
#include "serve/plan_cache.hpp"
#include "serve/protocol.hpp"
#include "sweep/thread_pool.hpp"

namespace rumr::serve {

struct ServerOptions {
  std::size_t threads = 0;        ///< Concurrent requests in service (0 = auto).
  /// Fan-out width for the queries *inside* one batch (1 = serial; 0 = auto).
  /// Results are index-ordered, so the width never changes response bytes.
  std::size_t batch_threads = 1;
  std::size_t cache_capacity = 4096;    ///< Plan-cache entries (0 = pass-through).
  std::size_t cache_max_bytes = 64u << 20;
  std::size_t cache_shards = 16;
  std::size_t queue_capacity = 64;      ///< Waiting requests beyond in-service.
  jobs::AdmissionPolicy admission = jobs::AdmissionPolicy::kRejectNew;
  jobs::QueueDiscipline discipline = jobs::QueueDiscipline::kFcfs;
  /// Audit every solved plan with check::audit_sim_result (violations turn
  /// into per-query errors) and make stats() audit-clean by construction.
  bool audit = true;

  /// Every problem with these options, human-readable; empty = usable.
  [[nodiscard]] std::vector<std::string> validate() const;
};

class Server {
 public:
  /// Throws std::invalid_argument listing every validate() problem.
  explicit Server(const ServerOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submits one frame payload. The future resolves to the response payload
  /// (never throws through the future: every failure is an error response).
  /// Ping/stats requests, malformed payloads, and admission rejections are
  /// answered synchronously; batch requests go through admission control
  /// and run on the executor pool.
  [[nodiscard]] std::future<std::string> submit(std::string payload);

  /// submit() + wait: the synchronous convenience path.
  [[nodiscard]] std::string handle(std::string payload);

  /// Pumps framed requests from `in` until EOF, writing framed responses to
  /// `out` in request order (concurrency happens between in-flight
  /// requests, not in the response order). A session-fatal framing error
  /// (bad magic/version/flags, oversized or truncated frame) writes one
  /// final error frame and closes the session.
  void serve_stream(std::istream& in, std::ostream& out);

  /// Blocks until no request is in service or queued.
  void wait_idle();

  /// Counter snapshot (request ledger + plan-cache ledger).
  [[nodiscard]] obs::ServeStats stats() const;

 private:
  struct Pending {
    Request request;
    std::promise<std::string> promise;
    std::uint64_t seq = 0;  ///< Arrival order (FCFS / tie-break key).
  };

  /// Executes one batch request to a response payload (no locks held).
  [[nodiscard]] std::string execute_batch(const Request& request);
  /// Solves one query cold (the cache-miss path).
  [[nodiscard]] std::string solve_query(const Query& query, std::uint64_t fingerprint);
  /// Worker loop: serve `item`, then chain onto queued requests until the
  /// queue is empty.
  void worker_run(Pending item);
  /// Picks the next queued request per the discipline. Caller holds mutex_;
  /// queue must be non-empty.
  [[nodiscard]] std::list<Pending>::iterator pick_next_locked();

  ServerOptions options_;
  PlanCache cache_;
  sweep::ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::list<Pending> queue_;
  std::size_t in_service_ = 0;
  std::uint64_t next_seq_ = 0;
  obs::ServeStats stats_;  ///< Request/query ledger (cache ledger lives in cache_).
};

}  // namespace rumr::serve
