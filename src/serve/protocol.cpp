#include "serve/protocol.hpp"

#include <charconv>
#include <cmath>
#include <cstring>

#include "util/json_lite.hpp"

namespace rumr::serve {
namespace {

using util::JsonError;
using util::JsonValue;

/// Largest worker count a query may describe. A homogeneous shorthand
/// expands at parse time, so without a cap a 16-byte request could demand a
/// multi-gigabyte worker list.
constexpr std::size_t kMaxWorkers = 100000;

/// Largest integer a double carries exactly; integer fields beyond it would
/// silently lose precision in the JSON number representation.
constexpr double kMaxExactDouble = 9007199254740992.0;  // 2^53

[[noreturn]] void bad_request(const std::string& what) {
  throw ProtocolError(ProtocolError::Kind::kBadRequest, "bad request: " + what);
}

/// Validates the 8 header bytes and returns the payload length.
std::uint32_t decode_header(const unsigned char* h) {
  if (h[0] != kMagic0 || h[1] != kMagic1) {
    throw ProtocolError(ProtocolError::Kind::kBadMagic, "frame: bad magic bytes");
  }
  if (h[2] != kProtocolVersion) {
    throw ProtocolError(ProtocolError::Kind::kBadVersion,
                        "frame: unknown protocol version " + std::to_string(h[2]));
  }
  if (h[3] != 0) {
    throw ProtocolError(ProtocolError::Kind::kBadFlags,
                        "frame: nonzero flags byte " + std::to_string(h[3]));
  }
  const std::uint32_t length = static_cast<std::uint32_t>(h[4]) |
                               (static_cast<std::uint32_t>(h[5]) << 8) |
                               (static_cast<std::uint32_t>(h[6]) << 16) |
                               (static_cast<std::uint32_t>(h[7]) << 24);
  if (length > kMaxPayloadBytes) {
    throw ProtocolError(ProtocolError::Kind::kOversized,
                        "frame: declared payload of " + std::to_string(length) +
                            " bytes exceeds the " + std::to_string(kMaxPayloadBytes) +
                            "-byte limit");
  }
  return length;
}

// --- Request-schema helpers ------------------------------------------------

double number_field(const JsonValue& v, const char* field) {
  if (v.kind() != JsonValue::Kind::kNumber) bad_request(std::string(field) + " must be a number");
  return v.as_number();
}

std::uint64_t integer_field(const JsonValue& v, const char* field, double max = kMaxExactDouble) {
  const double d = number_field(v, field);
  if (!(d >= 0.0) || d != std::floor(d) || d > max) {
    bad_request(std::string(field) + " must be a non-negative integer <= " +
                std::to_string(static_cast<std::uint64_t>(max)));
  }
  return static_cast<std::uint64_t>(d);
}

double nonnegative_field(const JsonValue& v, const char* field) {
  const double d = number_field(v, field);
  if (!(d >= 0.0)) bad_request(std::string(field) + " must be >= 0");
  return d;
}

double positive_field(const JsonValue& v, const char* field) {
  const double d = number_field(v, field);
  if (!(d > 0.0)) bad_request(std::string(field) + " must be > 0");
  return d;
}

void reject_unknown_keys(const JsonValue& obj, std::initializer_list<const char*> allowed,
                         const char* where) {
  for (const auto& [key, value] : obj.as_object()) {
    (void)value;
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) { known = true; break; }
    }
    if (!known) bad_request(std::string(where) + ": unknown key \"" + key + "\"");
  }
}

platform::WorkerSpec parse_worker_spec(const JsonValue& v, const char* where) {
  if (!v.is_object()) bad_request(std::string(where) + " must be an object");
  reject_unknown_keys(
      v, {"speed", "bandwidth", "comp_latency", "comm_latency", "transfer_latency"}, where);
  platform::WorkerSpec spec;
  if (const JsonValue* f = v.find("speed")) spec.speed = positive_field(*f, "speed");
  if (const JsonValue* f = v.find("bandwidth")) spec.bandwidth = positive_field(*f, "bandwidth");
  if (const JsonValue* f = v.find("comp_latency")) {
    spec.comp_latency = nonnegative_field(*f, "comp_latency");
  }
  if (const JsonValue* f = v.find("comm_latency")) {
    spec.comm_latency = nonnegative_field(*f, "comm_latency");
  }
  if (const JsonValue* f = v.find("transfer_latency")) {
    spec.transfer_latency = nonnegative_field(*f, "transfer_latency");
  }
  return spec;
}

/// Expands the platform description to the explicit worker list — the
/// canonicalization step that makes {"homogeneous": {"workers": 2}} and the
/// equivalent two-element "workers" array share one cache line.
std::vector<platform::WorkerSpec> parse_platform(const JsonValue* v) {
  if (v == nullptr) {
    // Library default: the paper's Table-1 homogeneous 10-worker platform.
    const platform::HomogeneousParams defaults;
    return std::vector<platform::WorkerSpec>(
        defaults.workers,
        platform::WorkerSpec{defaults.speed, defaults.bandwidth, defaults.comp_latency,
                             defaults.comm_latency, defaults.transfer_latency});
  }
  if (!v->is_object()) bad_request("platform must be an object");
  reject_unknown_keys(*v, {"homogeneous", "workers"}, "platform");
  const JsonValue* homogeneous = v->find("homogeneous");
  const JsonValue* workers = v->find("workers");
  if ((homogeneous != nullptr) == (workers != nullptr)) {
    bad_request("platform requires exactly one of \"homogeneous\" or \"workers\"");
  }
  if (homogeneous != nullptr) {
    if (!homogeneous->is_object()) bad_request("platform.homogeneous must be an object");
    reject_unknown_keys(*homogeneous,
                        {"workers", "speed", "bandwidth", "comp_latency", "comm_latency",
                         "transfer_latency"},
                        "platform.homogeneous");
    platform::HomogeneousParams params;
    if (const JsonValue* f = homogeneous->find("workers")) {
      params.workers = static_cast<std::size_t>(
          integer_field(*f, "platform.homogeneous.workers", static_cast<double>(kMaxWorkers)));
      if (params.workers == 0) bad_request("platform.homogeneous.workers must be >= 1");
    }
    platform::WorkerSpec spec{params.speed, params.bandwidth, params.comp_latency,
                              params.comm_latency, params.transfer_latency};
    if (const JsonValue* f = homogeneous->find("speed")) spec.speed = positive_field(*f, "speed");
    if (const JsonValue* f = homogeneous->find("bandwidth")) {
      spec.bandwidth = positive_field(*f, "bandwidth");
    }
    if (const JsonValue* f = homogeneous->find("comp_latency")) {
      spec.comp_latency = nonnegative_field(*f, "comp_latency");
    }
    if (const JsonValue* f = homogeneous->find("comm_latency")) {
      spec.comm_latency = nonnegative_field(*f, "comm_latency");
    }
    if (const JsonValue* f = homogeneous->find("transfer_latency")) {
      spec.transfer_latency = nonnegative_field(*f, "transfer_latency");
    }
    return std::vector<platform::WorkerSpec>(params.workers, spec);
  }
  if (!workers->is_array()) bad_request("platform.workers must be an array");
  const auto& list = workers->as_array();
  if (list.empty()) bad_request("platform.workers must not be empty");
  if (list.size() > kMaxWorkers) {
    bad_request("platform.workers exceeds the " + std::to_string(kMaxWorkers) + "-worker limit");
  }
  std::vector<platform::WorkerSpec> specs;
  specs.reserve(list.size());
  for (const JsonValue& entry : list) {
    specs.push_back(parse_worker_spec(entry, "platform.workers entry"));
  }
  return specs;
}

std::uint64_t parse_seed(const JsonValue& v) {
  if (v.kind() == JsonValue::Kind::kString) {
    // Decimal-string form: carries the full uint64 range (a JSON number
    // loses exactness past 2^53).
    const std::string& text = v.as_string();
    if (text.empty()) bad_request("seed string must not be empty");
    std::uint64_t seed = 0;
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), seed);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
      bad_request("seed string must be a decimal uint64");
    }
    return seed;
  }
  return integer_field(v, "seed");
}

Query parse_query(const JsonValue& v) {
  if (!v.is_object()) bad_request("query must be an object");
  reject_unknown_keys(v,
                      {"platform", "workload", "algorithm", "known_error", "error", "seed",
                       "uplink_channels", "output_ratio", "worker_buffer_capacity"},
                      "query");
  Query query;
  query.workers = parse_platform(v.find("platform"));
  const JsonValue* workload = v.find("workload");
  if (workload == nullptr) bad_request("query requires \"workload\"");
  query.workload = positive_field(*workload, "workload");
  if (const JsonValue* f = v.find("algorithm")) {
    if (f->kind() != JsonValue::Kind::kString) bad_request("algorithm must be a string");
    query.algorithm = f->as_string();
    if (query.algorithm.empty()) bad_request("algorithm must not be empty");
  }
  if (const JsonValue* f = v.find("known_error")) {
    query.known_error = nonnegative_field(*f, "known_error");
  }
  if (const JsonValue* f = v.find("error")) query.error = nonnegative_field(*f, "error");
  if (const JsonValue* f = v.find("seed")) query.seed = parse_seed(*f);
  if (const JsonValue* f = v.find("uplink_channels")) {
    query.uplink_channels = static_cast<std::size_t>(integer_field(*f, "uplink_channels"));
    if (query.uplink_channels == 0) bad_request("uplink_channels must be >= 1");
  }
  if (const JsonValue* f = v.find("output_ratio")) {
    query.output_ratio = nonnegative_field(*f, "output_ratio");
  }
  if (const JsonValue* f = v.find("worker_buffer_capacity")) {
    query.worker_buffer_capacity =
        static_cast<std::size_t>(integer_field(*f, "worker_buffer_capacity"));
    if (query.worker_buffer_capacity == 0) bad_request("worker_buffer_capacity must be >= 1");
  }
  return query;
}

/// Appends an integer in plain decimal (integers in canonical keys and
/// response envelopes never go through double formatting).
void append_decimal(std::string& out, std::uint64_t value) { out += std::to_string(value); }

}  // namespace

// --- Framing ---------------------------------------------------------------

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw ProtocolError(ProtocolError::Kind::kOversized,
                        "frame: payload of " + std::to_string(payload.size()) +
                            " bytes exceeds the " + std::to_string(kMaxPayloadBytes) +
                            "-byte limit");
  }
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.push_back(static_cast<char>(kMagic0));
  frame.push_back(static_cast<char>(kMagic1));
  frame.push_back(static_cast<char>(kProtocolVersion));
  frame.push_back('\0');  // flags
  const auto length = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<char>(length & 0xffu));
  frame.push_back(static_cast<char>((length >> 8) & 0xffu));
  frame.push_back(static_cast<char>((length >> 16) & 0xffu));
  frame.push_back(static_cast<char>((length >> 24) & 0xffu));
  frame.append(payload);
  return frame;
}

std::optional<std::string> read_frame(std::istream& in) {
  unsigned char header[kHeaderBytes];
  in.read(reinterpret_cast<char*>(header), static_cast<std::streamsize>(kHeaderBytes));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got == 0) return std::nullopt;  // clean EOF at a frame boundary
  if (got < kHeaderBytes) {
    throw ProtocolError(ProtocolError::Kind::kTruncated, "frame: stream ended inside a header");
  }
  const std::uint32_t length = decode_header(header);
  std::string payload(length, '\0');
  if (length > 0) {
    in.read(payload.data(), static_cast<std::streamsize>(length));
    if (static_cast<std::size_t>(in.gcount()) < length) {
      throw ProtocolError(ProtocolError::Kind::kTruncated, "frame: stream ended inside a payload");
    }
  }
  return payload;
}

void write_frame(std::ostream& out, std::string_view payload) {
  const std::string frame = encode_frame(payload);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
}

void FrameDecoder::feed(std::string_view bytes) { buffer_.append(bytes); }

std::optional<std::string> FrameDecoder::next() {
  // Validate the header prefix byte-by-byte so malformed streams fail as
  // soon as the evidence arrives, not only once 8 bytes are buffered.
  const auto* bytes = reinterpret_cast<const unsigned char*>(buffer_.data());
  if (!buffer_.empty() && bytes[0] != kMagic0) {
    throw ProtocolError(ProtocolError::Kind::kBadMagic, "frame: bad magic bytes");
  }
  if (buffer_.size() >= 2 && bytes[1] != kMagic1) {
    throw ProtocolError(ProtocolError::Kind::kBadMagic, "frame: bad magic bytes");
  }
  if (buffer_.size() >= 3 && bytes[2] != kProtocolVersion) {
    throw ProtocolError(ProtocolError::Kind::kBadVersion,
                        "frame: unknown protocol version " + std::to_string(bytes[2]));
  }
  if (buffer_.size() >= 4 && bytes[3] != 0) {
    throw ProtocolError(ProtocolError::Kind::kBadFlags,
                        "frame: nonzero flags byte " + std::to_string(bytes[3]));
  }
  if (buffer_.size() >= kHeaderBytes) {
    const std::uint32_t length = decode_header(bytes);
    if (buffer_.size() >= kHeaderBytes + length) {
      std::string payload = buffer_.substr(kHeaderBytes, length);
      buffer_.erase(0, kHeaderBytes + length);
      return payload;
    }
  }
  if (finished_ && !buffer_.empty()) {
    throw ProtocolError(ProtocolError::Kind::kTruncated, "frame: stream ended inside a frame");
  }
  return std::nullopt;
}

// --- Requests --------------------------------------------------------------

Request parse_request(const std::string& payload) {
  JsonValue doc = JsonValue::null();
  try {
    util::ParseLimits limits;
    limits.max_bytes = kMaxPayloadBytes;
    doc = JsonValue::parse(payload, limits);
  } catch (const JsonError& e) {
    bad_request(e.what());
  }
  Request request;
  try {
    if (!doc.is_object()) bad_request("request must be a JSON object");
    reject_unknown_keys(doc, {"type", "id", "priority", "queries"}, "request");
    const JsonValue* type = doc.find("type");
    if (type == nullptr || type->kind() != JsonValue::Kind::kString) {
      bad_request("request requires a string \"type\"");
    }
    if (type->as_string() == "batch") {
      request.type = RequestType::kBatch;
    } else if (type->as_string() == "ping") {
      request.type = RequestType::kPing;
    } else if (type->as_string() == "stats") {
      request.type = RequestType::kStats;
    } else {
      bad_request("unknown request type \"" + type->as_string() + "\"");
    }
    const JsonValue* id = doc.find("id");
    if (id == nullptr) bad_request("request requires \"id\"");
    request.id = static_cast<std::int64_t>(integer_field(*id, "id"));
    if (const JsonValue* priority = doc.find("priority")) {
      const double d = number_field(*priority, "priority");
      if (d != std::floor(d) || d < -kMaxExactDouble || d > kMaxExactDouble) {
        bad_request("priority must be an integer");
      }
      request.priority = static_cast<std::int64_t>(d);
    }
    const JsonValue* queries = doc.find("queries");
    if (request.type != RequestType::kBatch) {
      if (queries != nullptr) bad_request("only batch requests carry \"queries\"");
      return request;
    }
    if (queries == nullptr || !queries->is_array()) {
      bad_request("batch request requires a \"queries\" array");
    }
    if (queries->as_array().empty()) bad_request("batch request with an empty \"queries\" array");
    request.queries.reserve(queries->as_array().size());
    for (const JsonValue& entry : queries->as_array()) {
      QuerySlot slot;
      try {
        slot.query = parse_query(entry);
      } catch (const ProtocolError& e) {
        slot.error = e.what();
      } catch (const JsonError& e) {
        slot.error = std::string("bad request: ") + e.what();
      }
      request.queries.push_back(std::move(slot));
    }
  } catch (const JsonError& e) {
    bad_request(e.what());
  }
  return request;
}

// --- Canonical keys and fingerprints ---------------------------------------

std::string canonical_query_key(const Query& query) {
  std::string key;
  key.reserve(128 + 48 * query.workers.size());
  key += "{\"workers\":[";
  for (std::size_t i = 0; i < query.workers.size(); ++i) {
    const platform::WorkerSpec& w = query.workers[i];
    if (i > 0) key += ',';
    key += '[';
    util::append_json_number(key, w.speed);
    key += ',';
    util::append_json_number(key, w.bandwidth);
    key += ',';
    util::append_json_number(key, w.comp_latency);
    key += ',';
    util::append_json_number(key, w.comm_latency);
    key += ',';
    util::append_json_number(key, w.transfer_latency);
    key += ']';
  }
  key += "],\"workload\":";
  util::append_json_number(key, query.workload);
  key += ",\"algorithm\":";
  util::append_json_quoted(key, query.algorithm);
  key += ",\"known_error\":";
  util::append_json_number(key, query.known_error);
  key += ",\"error\":";
  util::append_json_number(key, query.error);
  key += ",\"seed\":\"";
  append_decimal(key, query.seed);
  key += "\",\"uplink_channels\":";
  append_decimal(key, query.uplink_channels);
  key += ",\"output_ratio\":";
  util::append_json_number(key, query.output_ratio);
  key += ",\"worker_buffer_capacity\":";
  append_decimal(key, query.worker_buffer_capacity);
  key += '}';
  return key;
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char ch : bytes) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// --- Responses -------------------------------------------------------------

std::string make_result_response(std::int64_t id, const std::vector<std::string>& results) {
  std::string payload = "{\"type\":\"result\",\"id\":";
  payload += std::to_string(id);
  payload += ",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i > 0) payload += ',';
    payload += results[i];  // pre-serialized: cached plan bytes pass through verbatim
  }
  payload += "]}";
  return payload;
}

std::string make_error_response(std::int64_t id, std::string_view error) {
  std::string payload = "{\"type\":\"error\",\"id\":";
  payload += std::to_string(id);
  payload += ",\"error\":";
  util::append_json_quoted(payload, error);
  payload += '}';
  return payload;
}

std::string make_query_error(std::string_view error) {
  std::string payload = "{\"error\":";
  util::append_json_quoted(payload, error);
  payload += '}';
  return payload;
}

std::string make_pong_response(std::int64_t id) {
  return "{\"type\":\"pong\",\"id\":" + std::to_string(id) + "}";
}

}  // namespace rumr::serve
