#include "serve/serve_config.hpp"

#include <algorithm>
#include <cctype>

#include "jobs/jobs_config.hpp"

namespace rumr::serve {
namespace {

std::string lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return text;
}

}  // namespace

ServerOptions server_options_from_config(const config::ConfigFile& file) {
  ServerOptions options;
  options.threads = file.get_size("serve", "threads", options.threads);
  options.batch_threads = file.get_size("serve", "batch_threads", options.batch_threads);
  options.cache_capacity = file.get_size("serve", "cache_capacity", options.cache_capacity);
  options.cache_max_bytes = file.get_size("serve", "cache_bytes", options.cache_max_bytes);
  options.cache_shards = file.get_size("serve", "cache_shards", options.cache_shards);
  options.queue_capacity = file.get_size("serve", "queue_capacity", options.queue_capacity);
  options.discipline = jobs::parse_discipline(lower(file.get_string("serve", "queue", "fcfs")));
  options.admission =
      jobs::parse_admission(lower(file.get_string("serve", "admission", "reject")));
  options.audit = file.get_bool("serve", "audit", options.audit);
  return options;
}

}  // namespace rumr::serve
