#pragma once

/// \file protocol.hpp
/// Wire protocol for the what-if scheduling server (rumr::serve).
///
/// Frame format (version 1), little-endian throughout:
///
///   offset  size  field
///   0       2     magic bytes 'R' 'U'
///   2       1     protocol version (1)
///   3       1     flags (must be 0 in version 1)
///   4       4     payload length in bytes, unsigned little-endian
///   8       n     payload: one JSON document (UTF-8, 7-bit clean on write)
///
/// A malformed header (bad magic, unknown version, nonzero flags, oversized
/// length) is session-fatal: the byte stream has lost framing and cannot be
/// resynchronized, so the server closes the session. A well-framed payload
/// that fails to parse as a request is NOT fatal — the server answers it
/// with an error response and keeps the session open.
///
/// Request payloads:
///
///   {"type": "batch", "id": 7, "priority": 0, "queries": [ <query>... ]}
///   {"type": "ping",  "id": 8}
///   {"type": "stats", "id": 9}
///
/// A query describes one what-if scheduling problem:
///
///   {"platform": {"homogeneous": {"workers": 10, "speed": 1, ...}}
///               | {"workers": [{"speed": 1, "bandwidth": 12, ...}, ...]},
///    "workload": 1000, "algorithm": "rumr", "known_error": 0.3,
///    "error": 0.3, "seed": 42, "uplink_channels": 1, "output_ratio": 0,
///    "worker_buffer_capacity": 1}
///
/// Response payloads (the `results` array holds one entry per query, in
/// query order — either a plan object or {"error": "..."}):
///
///   {"type": "result", "id": 7, "results": [ <plan>... ]}
///   {"type": "error",  "id": 7, "error": "..."}
///   {"type": "pong",   "id": 8}
///   {"type": "stats",  "id": 9, "stats": { ... obs::ServeStats ... }}
///
/// Determinism: responses never carry wall-clock time, host identity, or
/// ambient randomness — the same request bytes always produce the same
/// response bytes, which is what makes the plan cache's byte-identity
/// guarantee (cached == cold) testable.

#include <cstddef>
#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "platform/platform.hpp"

namespace rumr::serve {

inline constexpr unsigned char kMagic0 = 'R';
inline constexpr unsigned char kMagic1 = 'U';
inline constexpr unsigned char kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 8;
/// Upper bound on one frame's payload; a length field beyond this is treated
/// as a framing error before any allocation happens.
inline constexpr std::size_t kMaxPayloadBytes = 16u << 20;

/// Thrown on wire-level problems. Frame-level kinds (kBadMagic, kBadVersion,
/// kBadFlags, kOversized, kTruncated) are session-fatal; kBadRequest means a
/// well-framed payload that is not a valid request (answered with an error
/// response, session continues).
class ProtocolError : public std::runtime_error {
 public:
  enum class Kind : unsigned char {
    kBadMagic,    ///< Header does not start with 'R' 'U'.
    kBadVersion,  ///< Unknown protocol version byte.
    kBadFlags,    ///< Nonzero flags byte in a version that defines none.
    kOversized,   ///< Declared payload length exceeds kMaxPayloadBytes.
    kTruncated,   ///< Stream ended inside a header or payload.
    kBadRequest,  ///< Payload parsed as a frame but not as a request.
  };

  ProtocolError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  /// True when the session's framing is lost and it must be closed.
  [[nodiscard]] bool session_fatal() const noexcept { return kind_ != Kind::kBadRequest; }

 private:
  Kind kind_;
};

// --- Framing ---------------------------------------------------------------

/// Wraps one payload in a version-1 frame.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Reads one frame's payload from the stream. Returns std::nullopt on clean
/// EOF (stream exhausted exactly at a frame boundary). Throws ProtocolError
/// on a malformed header or a stream that ends mid-frame.
[[nodiscard]] std::optional<std::string> read_frame(std::istream& in);

/// Writes one framed payload to the stream.
void write_frame(std::ostream& out, std::string_view payload);

/// Incremental frame decoder for byte streams that arrive in arbitrary
/// slices (sockets, pipes). Feed bytes, then drain complete frames with
/// next(); call finish() at EOF so a dangling partial frame raises the named
/// truncation error instead of waiting forever.
class FrameDecoder {
 public:
  void feed(std::string_view bytes);

  /// Next complete payload, or std::nullopt if more bytes are needed.
  /// Throws ProtocolError (kBadMagic/kBadVersion/kBadFlags/kOversized) as
  /// soon as the buffered prefix proves the stream malformed, and
  /// kTruncated after finish() if a partial frame remains.
  [[nodiscard]] std::optional<std::string> next();

  /// Marks end of input.
  void finish() noexcept { finished_ = true; }

  /// True when every fed byte has been consumed into complete frames.
  [[nodiscard]] bool at_boundary() const noexcept { return buffer_.empty(); }

 private:
  std::string buffer_;
  bool finished_ = false;
};

// --- Requests --------------------------------------------------------------

/// One what-if scheduling problem, fully canonicalized: a homogeneous
/// platform shorthand is expanded to the explicit worker list at parse time,
/// so equivalent descriptions share one cache line.
struct Query {
  std::vector<platform::WorkerSpec> workers;
  double workload = 0.0;
  std::string algorithm = "rumr";
  double known_error = 0.0;
  double error = 0.0;
  std::uint64_t seed = 1;
  std::size_t uplink_channels = 1;
  double output_ratio = 0.0;
  std::size_t worker_buffer_capacity = 1;
};

enum class RequestType : unsigned char { kBatch, kPing, kStats };

/// One batch entry: either a parsed query or the reason it did not parse.
/// Per-query problems are answered in place ({"error": ...} in the results
/// array) so one bad query cannot poison a thousand-query batch.
struct QuerySlot {
  std::optional<Query> query;
  std::string error;  ///< Set iff !query.
};

struct Request {
  RequestType type = RequestType::kBatch;
  std::int64_t id = 0;
  std::int64_t priority = 0;   ///< Higher serves first under kPriority.
  std::vector<QuerySlot> queries;  ///< Populated for kBatch.
};

/// Parses one frame payload into a Request. Throws ProtocolError
/// (kBadRequest) with a human-readable reason on any envelope problem —
/// including an empty batch, which is a named error by contract. Problems
/// inside individual queries do NOT throw; they land in the slot's `error`.
[[nodiscard]] Request parse_request(const std::string& payload);

// --- Canonical keys and fingerprints ---------------------------------------

/// The canonical byte representation of a query: a compact JSON object with
/// a fixed key order, the worker list always explicit, every number printed
/// by the shortest-round-trip writer, and the seed carried as a decimal
/// string (it may exceed 2^53). Two queries describe the same problem iff
/// their canonical keys are byte-identical; the plan cache keys on this.
[[nodiscard]] std::string canonical_query_key(const Query& query);

/// FNV-1a 64-bit over a byte string (the cache's shard/fingerprint hash;
/// same constants as sweep::derive_rep_seed's label fold).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

// --- Responses -------------------------------------------------------------

/// Serialized plan fields live in serve/server.cpp (they need sim types);
/// response envelopes are assembled here so the framing layer owns every
/// byte that crosses the wire.

/// {"type":"result","id":N,"results":[...]} — `results` entries are
/// pre-serialized JSON (plan objects or per-query error objects) and are
/// spliced in verbatim, preserving the cached plan's exact bytes.
[[nodiscard]] std::string make_result_response(std::int64_t id,
                                               const std::vector<std::string>& results);

/// {"type":"error","id":N,"error":"..."} (request-level failure).
[[nodiscard]] std::string make_error_response(std::int64_t id, std::string_view error);

/// {"error":"..."} (per-query failure inside a result response).
[[nodiscard]] std::string make_query_error(std::string_view error);

/// {"type":"pong","id":N}
[[nodiscard]] std::string make_pong_response(std::int64_t id);

}  // namespace rumr::serve
