#pragma once

/// \file plan_cache.hpp
/// Content-addressed, concurrency-safe cache of solved scheduling plans.
///
/// Keys are canonical query bytes (serve::canonical_query_key); the cache
/// indexes them by their 64-bit FNV-1a fingerprint and keeps the full key in
/// every entry, so a fingerprint collision is detected (and counted) rather
/// than served as a silent wrong answer — a collision solves uncached.
///
/// Concurrency model: the fingerprint space is striped over S shards, each
/// guarded by its own mutex; a lookup locks exactly one shard and never
/// holds the lock across a solve. The first thread to miss a key installs a
/// pending entry (a promise) and solves OUTSIDE the lock; concurrent
/// lookups of the same key find the pending entry, count as hits, and block
/// on its shared_future — so every distinct key is solved exactly once no
/// matter how many threads race for it. A solver failure propagates to
/// every waiter and removes the entry, so a later lookup retries.
///
/// Bounding: per-shard LRU over *ready* entries (pending entries are pinned
/// — evicting a plan mid-solve would break exactly-once), limited by entry
/// count and resident bytes; both budgets are apportioned across shards.
/// A zero-capacity cache still dedups in-flight solves: the entry is
/// installed, completes, and is immediately evicted, so the accounting
/// identities (entries + evictions == insertions, ...) hold in pass-through
/// mode too.
///
/// Determinism: the cache stores the solved plan's exact serialized bytes
/// and hands out shared ownership of that one string, which is what makes
/// the server's cached-vs-cold byte-identity guarantee structural rather
/// than aspirational.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace rumr::serve {

struct PlanCacheOptions {
  std::size_t capacity = 4096;              ///< Max resident entries (0 = pass-through).
  std::size_t max_bytes = 64u << 20;        ///< Max resident key+plan bytes.
  std::size_t shards = 16;                  ///< Mutex stripes (>= 1).
};

class PlanCache {
 public:
  /// Solves one canonical query into its serialized plan bytes. May throw;
  /// the exception reaches every thread waiting on that key.
  using Solver = std::function<std::string()>;

  explicit PlanCache(const PlanCacheOptions& options = {});

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the plan for `canonical_key`, running `solve` at most once per
  /// resident key across all threads. Rethrows the solver's exception on
  /// failure (for this call and every concurrent waiter).
  [[nodiscard]] std::shared_ptr<const std::string> get_or_compute(
      const std::string& canonical_key, const Solver& solve);

  /// Aggregated counters over all shards (a consistent-enough snapshot:
  /// each shard is read under its own lock).
  [[nodiscard]] obs::CacheStats stats() const;

 private:
  using PlanPtr = std::shared_ptr<const std::string>;

  struct Entry {
    std::string key;                 ///< Full canonical bytes (collision check).
    std::shared_future<PlanPtr> plan;
    std::uint64_t tick = 0;          ///< LRU stamp; valid iff ready.
    std::size_t bytes = 0;           ///< key + plan bytes; 0 until ready.
    bool ready = false;              ///< Pinned (not evictable) while false.
  };

  struct Shard {
    mutable std::mutex mutex;
    std::map<std::uint64_t, Entry> entries;      ///< fingerprint -> entry.
    std::map<std::uint64_t, std::uint64_t> lru;  ///< tick -> fingerprint (ready only).
    std::uint64_t next_tick = 0;
    std::size_t capacity = 0;
    std::size_t max_bytes = 0;
    obs::CacheStats stats;  ///< Guarded by mutex; entries/bytes_cached live.
  };

  /// Evicts least-recently-used ready entries until this shard is within
  /// its budgets. Caller holds the shard lock.
  static void evict_to_budget(Shard& shard);

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rumr::serve
