#pragma once

/// \file serve_config.hpp
/// Configuration-file bridge for the what-if scheduling server.
///
/// Schema (all keys optional; defaults are the ServerOptions defaults):
///
///   [serve]
///   threads = 0             ; concurrent requests in service (0 = auto)
///   batch_threads = 1       ; query fan-out inside one batch (0 = auto)
///   cache_capacity = 4096   ; plan-cache entries (0 = pass-through)
///   cache_bytes = 67108864  ; plan-cache resident-byte budget
///   cache_shards = 16       ; plan-cache mutex stripes
///   queue = fcfs            ; fcfs | sjf | priority
///   admission = reject      ; reject | shed
///   queue_capacity = 64     ; waiting requests beyond in-service
///   audit = true            ; audit every solved plan
///
/// The queue/admission vocabulary is jobs_config's, parsed by the same
/// public jobs::parse_discipline / jobs::parse_admission helpers — the
/// server is an instance of the admission system the library simulates.

#include "config/config_file.hpp"
#include "serve/server.hpp"

namespace rumr::serve {

/// Parses the [serve] section into server options. Throws
/// config::ConfigError on bad enum values or unparseable numbers.
[[nodiscard]] ServerOptions server_options_from_config(const config::ConfigFile& file);

}  // namespace rumr::serve
