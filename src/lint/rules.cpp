#include "lint/rule.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

namespace rumr::lint {
namespace {

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

/// Token text at index, or empty when out of range.
[[nodiscard]] std::string_view text_at(const std::vector<Token>& toks, std::size_t i) noexcept {
  return i < toks.size() ? std::string_view(toks[i].text) : std::string_view{};
}

/// True when the identifier at `i` is a free/std call rather than a member:
/// not preceded by `.` or `->`, and a preceding `::` must be `std::`.
[[nodiscard]] bool is_free_or_std_use(const std::vector<Token>& toks, std::size_t i) noexcept {
  if (i == 0) return true;
  const std::string_view prev = text_at(toks, i - 1);
  if (prev == "." || prev == "->") return false;
  if (prev == "::") return i >= 2 && text_at(toks, i - 2) == "std";
  return true;
}

[[nodiscard]] bool is_float_literal(std::string_view num) noexcept {
  if (starts_with(num, "0x") || starts_with(num, "0X")) {
    return num.find('p') != std::string_view::npos || num.find('P') != std::string_view::npos;
  }
  return num.find('.') != std::string_view::npos ||
         num.find('e') != std::string_view::npos || num.find('E') != std::string_view::npos;
}

/// Shared boilerplate: rules differ only in name/rationale/scope/check.
class RuleBase : public Rule {
 public:
  RuleBase(std::string_view name, std::string_view rationale) noexcept
      : name_(name), rationale_(rationale) {}
  [[nodiscard]] std::string_view name() const noexcept final { return name_; }
  [[nodiscard]] std::string_view rationale() const noexcept final { return rationale_; }

 protected:
  void report(const SourceFile& file, int line, std::string message,
              std::vector<Finding>& out) const {
    out.push_back({std::string(name_), file.rel_path, line, std::move(message)});
  }

 private:
  std::string_view name_;
  std::string_view rationale_;
};

// ---------------------------------------------------------------------------
// Rule 1: unordered-container
// ---------------------------------------------------------------------------
class UnorderedContainerRule final : public RuleBase {
 public:
  UnorderedContainerRule() noexcept
      : RuleBase("unordered-container",
                 "Hash-container iteration order is unspecified and varies with "
                 "libstdc++ version, seed mitigation, and insertion history; any "
                 "result or simulation path that iterates one loses byte-identical "
                 "replay. Use std::map/std::vector, or sort before iterating.") {}

  [[nodiscard]] bool applies_to(std::string_view rel_path) const noexcept override {
    return starts_with(rel_path, "src/");
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    constexpr std::array<std::string_view, 4> kBanned = {
        "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
    for (const Token& tok : file.lexed.tokens) {
      if (tok.kind != TokenKind::kIdentifier) continue;
      if (std::find(kBanned.begin(), kBanned.end(), tok.text) == kBanned.end()) continue;
      report(file, tok.line,
             "std::" + tok.text + " has nondeterministic iteration order", out);
    }
  }
};

// ---------------------------------------------------------------------------
// Rule 2: ambient-randomness
// ---------------------------------------------------------------------------
class AmbientRandomnessRule final : public RuleBase {
 public:
  AmbientRandomnessRule() noexcept
      : RuleBase("ambient-randomness",
                 "Every random draw must flow from a seeded rumr::stats::Rng lane "
                 "so runs replay bit-for-bit; std::random_device, rand()/srand(), "
                 "and the *rand48 family pull entropy (or hidden global state) "
                 "from outside the seed, so two identical configs diverge.") {}

  [[nodiscard]] bool applies_to(std::string_view rel_path) const noexcept override {
    // The RNG-lane factory itself is the one place allowed to own engines.
    return rel_path != "src/stats/rng.cpp" && rel_path != "src/stats/rng.hpp";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    // Flagged wherever they appear (a declaration is as bad as a call).
    constexpr std::array<std::string_view, 6> kAlways = {
        "random_device", "random_shuffle", "drand48", "lrand48", "mrand48", "erand48"};
    // Flagged only as calls, to spare identifiers that merely contain them.
    constexpr std::array<std::string_view, 2> kCalls = {"rand", "srand"};
    const auto& toks = file.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (tok.kind != TokenKind::kIdentifier) continue;
      if (std::find(kAlways.begin(), kAlways.end(), tok.text) != kAlways.end()) {
        report(file, tok.line, tok.text + " bypasses the seeded RNG lanes", out);
        continue;
      }
      if (std::find(kCalls.begin(), kCalls.end(), tok.text) != kCalls.end() &&
          text_at(toks, i + 1) == "(" && is_free_or_std_use(toks, i)) {
        report(file, tok.line,
               tok.text + "() draws from hidden global state outside the RNG lanes", out);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule 3: wall-clock
// ---------------------------------------------------------------------------
class WallClockRule final : public RuleBase {
 public:
  WallClockRule() noexcept
      : RuleBase("wall-clock",
                 "Simulated time is the only clock the engine may consult: wall "
                 "time leaks host speed into results and differs every run. The "
                 "sole sanctioned use is observability throughput metrics (e.g. "
                 "events/sec in sim/master_worker.cpp), which must carry an "
                 "explicit suppression. bench/ is out of scope by design — "
                 "benchmarks measure wall time on purpose.") {}

  [[nodiscard]] bool applies_to(std::string_view rel_path) const noexcept override {
    return starts_with(rel_path, "src/") || starts_with(rel_path, "tools/");
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    constexpr std::array<std::string_view, 11> kClockIds = {
        "system_clock", "steady_clock", "high_resolution_clock", "utc_clock",
        "file_clock",   "gettimeofday", "clock_gettime",         "timespec_get",
        "localtime",    "gmtime",       "mktime"};
    constexpr std::array<std::string_view, 2> kClockCalls = {"time", "clock"};
    const auto& toks = file.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (tok.kind != TokenKind::kIdentifier || tok.preproc) continue;
      if (std::find(kClockIds.begin(), kClockIds.end(), tok.text) != kClockIds.end()) {
        report(file, tok.line, tok.text + " reads the wall clock", out);
        continue;
      }
      if (std::find(kClockCalls.begin(), kClockCalls.end(), tok.text) != kClockCalls.end() &&
          text_at(toks, i + 1) == "(" && is_free_or_std_use(toks, i)) {
        report(file, tok.line, tok.text + "() reads the wall clock", out);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule 4: pointer-keyed-container
// ---------------------------------------------------------------------------
class PointerKeyedContainerRule final : public RuleBase {
 public:
  PointerKeyedContainerRule() noexcept
      : RuleBase("pointer-keyed-container",
                 "Ordering by pointer value means ordering by allocator address, "
                 "which changes run to run under ASLR and allocation history; a "
                 "std::map/std::set keyed by a pointer (or a std::less/greater "
                 "over pointers) iterates in a different order every execution. "
                 "Key by a stable id instead.") {}

  [[nodiscard]] bool applies_to(std::string_view) const noexcept override { return true; }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    constexpr std::array<std::string_view, 6> kOrdered = {"map",      "set",  "multimap",
                                                          "multiset", "less", "greater"};
    const auto& toks = file.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (tok.kind != TokenKind::kIdentifier) continue;
      if (std::find(kOrdered.begin(), kOrdered.end(), tok.text) == kOrdered.end()) continue;
      if (!(i >= 2 && text_at(toks, i - 1) == "::" && text_at(toks, i - 2) == "std")) continue;
      if (text_at(toks, i + 1) != "<") continue;
      if (first_template_arg_has_pointer(toks, i + 2)) {
        report(file, tok.line, "std::" + tok.text + " ordered by pointer value", out);
      }
    }
  }

 private:
  /// Scans the first template argument starting at `begin` (just past the
  /// opening '<'); reports whether a '*' appears anywhere inside it.
  [[nodiscard]] static bool first_template_arg_has_pointer(const std::vector<Token>& toks,
                                                           std::size_t begin) noexcept {
    int depth = 1;
    constexpr std::size_t kScanLimit = 256;
    for (std::size_t i = begin; i < toks.size() && i < begin + kScanLimit; ++i) {
      const std::string_view t = toks[i].text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        if (--depth == 0) return false;
      } else if (t == ">>") {
        depth -= 2;
        if (depth <= 0) return false;
      } else if (t == "," && depth == 1) {
        return false;  // End of the key argument.
      } else if (t == "*") {
        return true;
      } else if (t == ";" || t == "{") {
        return false;  // Not a template argument list after all.
      }
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Rule 5: mutable-static
// ---------------------------------------------------------------------------
class MutableStaticRule final : public RuleBase {
 public:
  MutableStaticRule() noexcept
      : RuleBase("mutable-static",
                 "Mutable static state (global, function-local, or a static data "
                 "member) is shared across every run and every sweep::ThreadPool "
                 "worker: it breaks replay isolation between repetitions and is a "
                 "data race under TSan. Use const/constexpr, or thread state "
                 "through explicitly.") {}

  [[nodiscard]] bool applies_to(std::string_view rel_path) const noexcept override {
    return starts_with(rel_path, "src/");
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    const auto& toks = file.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (tok.kind != TokenKind::kIdentifier || tok.text != "static" || tok.preproc) continue;
      if (is_mutable_static_decl(toks, i + 1)) {
        report(file, tok.line,
               "mutable static state (no const/constexpr qualifier)", out);
      }
    }
  }

 private:
  /// Heuristic classifier for the declaration following `static`: scans to
  /// the first top-level terminator. A '(' means a function declaration (or
  /// paren-init, which we accept as the cost of no parse); const/constexpr/
  /// constinit at template depth zero marks immutable state.
  [[nodiscard]] static bool is_mutable_static_decl(const std::vector<Token>& toks,
                                                   std::size_t begin) noexcept {
    int depth = 0;
    constexpr std::size_t kScanLimit = 96;
    for (std::size_t i = begin; i < toks.size() && i < begin + kScanLimit; ++i) {
      const std::string_view t = toks[i].text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        if (depth > 0) --depth;
      } else if (t == ">>") {
        depth = depth >= 2 ? depth - 2 : 0;
      } else if (depth == 0) {
        if (t == "const" || t == "constexpr" || t == "constinit") return false;
        if (t == "(") return false;  // Function (or paren-init) — not flagged.
        if (t == ";" || t == "=" || t == "{") return true;
      }
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Rule 6: float-equality
// ---------------------------------------------------------------------------
class FloatEqualityRule final : public RuleBase {
 public:
  FloatEqualityRule() noexcept
      : RuleBase("float-equality",
                 "Exact ==/!= on floating-point values in scheduling and "
                 "simulation code is usually a latent bug: two mathematically "
                 "equal chunk sizes or timestamps can differ in the last ulp "
                 "depending on evaluation order, flipping a branch and the whole "
                 "downstream schedule. Compare against a tolerance. (Heuristic: "
                 "the lint flags comparisons against floating literals; it "
                 "cannot see the types of variables.)") {}

  [[nodiscard]] bool applies_to(std::string_view rel_path) const noexcept override {
    return starts_with(rel_path, "src/sim/") || starts_with(rel_path, "src/jobs/") ||
           starts_with(rel_path, "src/core/") || starts_with(rel_path, "src/baselines/");
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    const auto& toks = file.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (tok.kind != TokenKind::kPunct || (tok.text != "==" && tok.text != "!=")) continue;
      const bool prev_float =
          i >= 1 && toks[i - 1].kind == TokenKind::kNumber && is_float_literal(toks[i - 1].text);
      const bool next_float = i + 1 < toks.size() && toks[i + 1].kind == TokenKind::kNumber &&
                              is_float_literal(toks[i + 1].text);
      if (prev_float || next_float) {
        report(file, tok.line,
               "exact floating-point " + tok.text + " against a literal", out);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule 7: pragma-once
// ---------------------------------------------------------------------------
class PragmaOnceRule final : public RuleBase {
 public:
  PragmaOnceRule() noexcept
      : RuleBase("pragma-once",
                 "Every header must open with #pragma once (before any other "
                 "token): a missing guard turns a refactor that adds a second "
                 "include path into an ODR violation, and mixed guard styles "
                 "defeat the header self-sufficiency gate.") {}

  [[nodiscard]] bool applies_to(std::string_view rel_path) const noexcept override {
    return ends_with(rel_path, ".hpp") || ends_with(rel_path, ".h");
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    const auto& toks = file.lexed.tokens;
    const bool ok = toks.size() >= 3 && toks[0].text == "#" && toks[1].text == "pragma" &&
                    toks[2].text == "once";
    if (!ok) {
      report(file, toks.empty() ? 1 : toks[0].line,
             "header does not open with #pragma once", out);
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<UnorderedContainerRule>());
  rules.push_back(std::make_unique<AmbientRandomnessRule>());
  rules.push_back(std::make_unique<WallClockRule>());
  rules.push_back(std::make_unique<PointerKeyedContainerRule>());
  rules.push_back(std::make_unique<MutableStaticRule>());
  rules.push_back(std::make_unique<FloatEqualityRule>());
  rules.push_back(std::make_unique<PragmaOnceRule>());
  return rules;
}

}  // namespace rumr::lint
