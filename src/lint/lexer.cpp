#include "lint/lexer.hpp"

#include <array>
#include <cctype>
#include <cstddef>

namespace rumr::lint {
namespace {

[[nodiscard]] bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

// Longest-match operator tables: without these, "!=" would lex as "!" + "="
// and the float-equality rule would miss every inequality.
constexpr std::array<std::string_view, 5> kThreeCharOps = {"<<=", ">>=", "->*", "...", "<=>"};
constexpr std::array<std::string_view, 20> kTwoCharOps = {
    "::", "->", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "##"};

/// Encoding prefixes that may precede a string or character literal.
[[nodiscard]] bool is_encoding_prefix(std::string_view id) noexcept {
  return id == "L" || id == "u" || id == "U" || id == "u8";
}

/// Raw-string introducers: R plus every encoding-prefixed form.
[[nodiscard]] bool is_raw_prefix(std::string_view id) noexcept {
  return id == "R" || id == "LR" || id == "uR" || id == "UR" || id == "u8R";
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult res;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool preproc = false;        // Inside a # directive, until an uncontinued newline.
  bool line_has_token = false; // Whether a token was emitted on the current line.
  int last_token_line = 0;     // For classifying comments as trailing.

  auto emit = [&](TokenKind kind, std::size_t begin, std::size_t end, int at_line) {
    res.tokens.push_back({kind, std::string(src.substr(begin, end - begin)), at_line, preproc});
    line_has_token = true;
    last_token_line = line;
  };

  // Consumes an ordinary (non-raw) string literal body; i sits on the opening
  // quote on entry and one past the closing quote on exit.
  auto consume_string = [&] {
    ++i;  // opening "
    while (i < n && src[i] != '"') {
      if (src[i] == '\\' && i + 1 < n) {
        if (src[i + 1] == '\n') ++line;
        i += 2;
        continue;
      }
      if (src[i] == '\n') ++line;  // Unterminated literal: tolerate.
      ++i;
    }
    if (i < n) ++i;  // closing "
  };

  auto consume_char_literal = [&] {
    ++i;  // opening '
    while (i < n && src[i] != '\'') {
      if (src[i] == '\\' && i + 1 < n) {
        i += 2;
        continue;
      }
      if (src[i] == '\n') { ++line; break; }  // Unterminated: stop at newline.
      ++i;
    }
    if (i < n && src[i] == '\'') ++i;
  };

  // R"delim( ... )delim" — i sits on the opening quote.
  auto consume_raw_string = [&] {
    ++i;  // opening "
    std::size_t delim_begin = i;
    while (i < n && src[i] != '(' && src[i] != '\n' && i - delim_begin < 17) ++i;
    const std::string_view delim = src.substr(delim_begin, i - delim_begin);
    if (i < n && src[i] == '(') ++i;
    std::string closer;
    closer.reserve(delim.size() + 2);
    closer.push_back(')');
    closer.append(delim);
    closer.push_back('"');
    while (i < n) {
      if (src[i] == '\n') ++line;
      if (src.compare(i, closer.size(), closer) == 0) {
        i += closer.size();
        return;
      }
      ++i;
    }
  };

  while (i < n) {
    const char c = src[i];

    if (c == '\n') {
      // A directive survives its newline only under a backslash continuation
      // (optionally with a carriage return between the backslash and newline).
      if (preproc) {
        const bool continued = (i >= 1 && src[i - 1] == '\\') ||
                               (i >= 2 && src[i - 1] == '\r' && src[i - 2] == '\\');
        if (!continued) preproc = false;
      }
      ++line;
      line_has_token = false;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      res.comments.push_back(
          {std::string(src.substr(i + 2, j - i - 2)), line, last_token_line == line});
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      res.comments.push_back(
          {std::string(src.substr(i + 2, j - i - 2)), start_line, last_token_line == start_line});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }

    // Identifiers, and the string/char literals their prefixes can introduce.
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      const std::string_view id = src.substr(i, j - i);
      if (j < n && src[j] == '"' && is_raw_prefix(id)) {
        const std::size_t begin = i;
        i = j;
        consume_raw_string();
        emit(TokenKind::kString, begin, i, line);
        continue;
      }
      if (j < n && src[j] == '"' && is_encoding_prefix(id)) {
        const std::size_t begin = i;
        i = j;
        consume_string();
        emit(TokenKind::kString, begin, i, line);
        continue;
      }
      if (j < n && src[j] == '\'' && is_encoding_prefix(id)) {
        const std::size_t begin = i;
        i = j;
        consume_char_literal();
        emit(TokenKind::kCharLiteral, begin, i, line);
        continue;
      }
      emit(TokenKind::kIdentifier, i, j, line);
      i = j;
      continue;
    }

    if (c == '"') {
      const std::size_t begin = i;
      const int start_line = line;
      consume_string();
      emit(TokenKind::kString, begin, i, start_line);
      continue;
    }
    if (c == '\'') {
      const std::size_t begin = i;
      consume_char_literal();
      emit(TokenKind::kCharLiteral, begin, i, line);
      continue;
    }

    // Numbers: digits, a leading dot, digit separators, exponents (e/E for
    // decimal, p/P for hex floats) with signs, and alphabetic suffixes.
    if (is_digit(c) || (c == '.' && i + 1 < n && is_digit(src[i + 1]))) {
      std::size_t j = i;
      while (j < n) {
        const char d = src[j];
        if (is_ident_char(d) || d == '.') {
          ++j;
          continue;
        }
        if (d == '\'' && j + 1 < n && is_ident_char(src[j + 1])) {
          ++j;  // digit separator
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char prev = static_cast<char>(
              std::tolower(static_cast<unsigned char>(src[j - 1])));
          if (prev == 'e' || prev == 'p') {
            ++j;
            continue;
          }
        }
        break;
      }
      emit(TokenKind::kNumber, i, j, line);
      i = j;
      continue;
    }

    // A directive starts at a # that opens its line.
    if (c == '#' && !line_has_token) preproc = true;

    // Punctuators, longest match first.
    std::size_t op_len = 1;
    for (const auto op : kThreeCharOps) {
      if (src.compare(i, op.size(), op) == 0) {
        op_len = 3;
        break;
      }
    }
    if (op_len == 1) {
      for (const auto op : kTwoCharOps) {
        if (src.compare(i, op.size(), op) == 0) {
          op_len = 2;
          break;
        }
      }
    }
    emit(TokenKind::kPunct, i, i + op_len, line);
    i += op_len;
  }

  res.line_count = line;
  return res;
}

}  // namespace rumr::lint
