#pragma once

/// \file rule.hpp
/// Rule interface and finding record for the determinism lint.
///
/// Every rule carries a machine-readable name (the suppression key), a
/// rationale explaining *why* the pattern threatens byte-identical replay,
/// and a path predicate restricting where it applies. Rules see a lexed
/// SourceFile and append Findings; suppression filtering happens in the
/// engine, not in rules.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace rumr::lint {

struct Finding {
  std::string rule;
  std::string file;  ///< Repo-relative path, forward slashes.
  int line = 0;
  std::string message;
};

/// One lexed source file. `rel_path` is relative to the repo root with
/// forward slashes — rule applicability and reports both key off it.
struct SourceFile {
  std::string rel_path;
  std::string content;
  LexResult lexed;

  [[nodiscard]] static SourceFile from_string(std::string rel_path, std::string content);
  /// Throws std::runtime_error when the file cannot be read.
  [[nodiscard]] static SourceFile from_disk(const std::string& abs_path, std::string rel_path);
  [[nodiscard]] bool is_header() const;
};

class Rule {
 public:
  virtual ~Rule() = default;
  Rule() = default;
  Rule(const Rule&) = delete;
  Rule& operator=(const Rule&) = delete;

  /// Stable kebab-case identifier used in reports and allow() suppressions.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// Why violating this rule breaks determinism/reproducibility.
  [[nodiscard]] virtual std::string_view rationale() const noexcept = 0;
  [[nodiscard]] virtual bool applies_to(std::string_view rel_path) const noexcept = 0;
  virtual void check(const SourceFile& file, std::vector<Finding>& out) const = 0;
};

/// The engine-level suppression-hygiene pseudo-rule: reported like any other
/// rule but implemented inside the engine and deliberately not suppressible.
inline constexpr std::string_view kSuppressionHygieneRule = "suppression-hygiene";
inline constexpr std::string_view kSuppressionHygieneRationale =
    "Suppressions are part of the determinism contract: an allow() naming an "
    "unknown rule silently enforces nothing, a reasonless one hides intent, "
    "and a stale one outlives the code it excused and masks future findings.";

/// The full registry: the seven token-level rules, in report order.
[[nodiscard]] std::vector<std::unique_ptr<Rule>> make_default_rules();

}  // namespace rumr::lint
