#pragma once

/// \file report.hpp
/// Finding reporters (text and JSON) and baseline-file support.
///
/// A baseline is a sorted text file of one `path|rule|line` key per line,
/// written by `--write-baseline` and subtracted by `--baseline`. It exists
/// for adopting the lint on a tree with legacy findings; this repo's own
/// gate runs baseline-free (zero findings is the contract).

#include <iosfwd>
#include <string>
#include <vector>

#include "lint/rule.hpp"

namespace rumr::lint {

class Engine;

/// `path|rule|line` — the stable identity of a finding for baselines.
[[nodiscard]] std::string finding_key(const Finding& f);

void print_text(const std::vector<Finding>& findings, std::ostream& out);
void print_json(const std::vector<Finding>& findings, std::size_t files_scanned,
                std::ostream& out);
void print_rule_catalog(const Engine& engine, std::ostream& out);

/// Returns false (after printing to err) on IO failure. `keys_out` comes
/// back sorted for binary_search.
[[nodiscard]] bool load_baseline(const std::string& path, std::vector<std::string>& keys_out,
                                 std::ostream& err);
[[nodiscard]] bool write_baseline(const std::vector<Finding>& findings, const std::string& path,
                                  std::ostream& err);

}  // namespace rumr::lint
