#pragma once

/// \file lexer.hpp
/// Token-level scanner for the self-hosted determinism lint (rumr::lint).
///
/// This is not a C++ parser: it is a lexer that is exactly smart enough to
/// never be fooled by the places rule keywords can legally hide — line and
/// block comments, string literals (including raw strings with custom
/// delimiters and encoding prefixes), character literals, and digit
/// separators. Rules then pattern-match over the resulting token stream,
/// which makes them immune to the classic grep failure modes ("steady_clock"
/// in a comment, "rand" inside a string).

#include <string>
#include <string_view>
#include <vector>

namespace rumr::lint {

enum class TokenKind {
  kIdentifier,   ///< Identifiers and keywords (the lexer does not distinguish).
  kNumber,       ///< Numeric literal, including hex floats and separators.
  kString,       ///< Any string literal (ordinary, raw, or encoding-prefixed).
  kCharLiteral,  ///< Character literal.
  kPunct,        ///< Operator or punctuator (multi-char operators combined).
};

struct Token {
  TokenKind kind;
  std::string text;  ///< Verbatim spelling (string/char literals keep quotes).
  int line;          ///< 1-based line of the token's first character.
  bool preproc;      ///< True when the token is part of a preprocessor directive.
};

struct Comment {
  std::string text;  ///< Interior text, without the // or /* */ markers.
  int line;          ///< 1-based line where the comment starts.
  bool trailing;     ///< True when a token precedes the comment on its line.
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  int line_count = 0;
};

/// Scans a whole translation unit. Never throws: malformed input (unterminated
/// literals, stray bytes) degrades to best-effort tokens rather than failure,
/// because a linter must be able to look at broken code.
[[nodiscard]] LexResult lex(std::string_view source);

}  // namespace rumr::lint
