#include "lint/engine.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "lint/file_set.hpp"
#include "lint/report.hpp"

namespace rumr::lint {
namespace {

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

constexpr std::string_view kMarker = "rumr-lint:";

}  // namespace

SourceFile SourceFile::from_string(std::string rel_path, std::string content) {
  SourceFile file;
  file.rel_path = std::move(rel_path);
  file.content = std::move(content);
  file.lexed = lex(file.content);
  return file;
}

SourceFile SourceFile::from_disk(const std::string& abs_path, std::string rel_path) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) throw std::runtime_error("rumr_lint: cannot read " + abs_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_string(std::move(rel_path), std::move(buf).str());
}

bool SourceFile::is_header() const {
  const std::string_view p = rel_path;
  return p.size() >= 4 && (p.substr(p.size() - 4) == ".hpp" ||
                           (p.size() >= 2 && p.substr(p.size() - 2) == ".h"));
}

Engine::Engine() : rules_(make_default_rules()) {}

bool Engine::is_known_rule(std::string_view name) const noexcept {
  return std::any_of(rules_.begin(), rules_.end(),
                     [&](const auto& r) { return r->name() == name; });
}

std::vector<Suppression> Engine::parse_suppressions(const SourceFile& file,
                                                    std::vector<Finding>& hygiene_out) {
  std::vector<Suppression> sups;
  for (const Comment& comment : file.lexed.comments) {
    std::string_view text = trim(comment.text);
    if (text.substr(0, kMarker.size()) != kMarker) continue;
    text = trim(text.substr(kMarker.size()));

    auto malformed = [&](std::string_view why) {
      hygiene_out.push_back({std::string(kSuppressionHygieneRule), file.rel_path, comment.line,
                             "malformed rumr-lint comment (" + std::string(why) +
                                 "); expected: rumr-lint: allow(<rule>) <reason>"});
    };
    if (text.substr(0, 6) != "allow(") {
      malformed("missing allow(...)");
      continue;
    }
    const std::size_t close = text.find(')');
    if (close == std::string_view::npos) {
      malformed("unterminated allow(");
      continue;
    }
    Suppression sup;
    sup.rule = std::string(trim(text.substr(6, close - 6)));
    sup.comment_line = comment.line;
    sup.target_line = comment.trailing ? comment.line : comment.line + 1;
    sup.has_reason = !trim(text.substr(close + 1)).empty();
    sups.push_back(std::move(sup));
  }
  return sups;
}

std::vector<Finding> Engine::lint_file(const SourceFile& file) const {
  std::vector<Finding> findings;
  std::vector<Suppression> sups = parse_suppressions(file, findings);

  // Hygiene pass one: every suppression must name a real rule and say why.
  for (const Suppression& sup : sups) {
    if (!is_known_rule(sup.rule)) {
      findings.push_back({std::string(kSuppressionHygieneRule), file.rel_path, sup.comment_line,
                          "suppression names unknown rule '" + sup.rule + "'"});
    }
    if (!sup.has_reason) {
      findings.push_back({std::string(kSuppressionHygieneRule), file.rel_path, sup.comment_line,
                          "suppression of '" + sup.rule + "' gives no reason"});
    }
  }

  // Rule pass, with suppression filtering. A suppression matches findings of
  // its rule on its target line; matching marks it used even when it lacks a
  // reason (the missing reason is already its own finding above).
  std::vector<Finding> raw;
  for (const auto& rule : rules_) {
    if (!rule->applies_to(file.rel_path)) continue;
    rule->check(file, raw);
  }
  for (Finding& f : raw) {
    bool suppressed = false;
    for (Suppression& sup : sups) {
      if (sup.rule == f.rule && sup.target_line == f.line) {
        sup.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) findings.push_back(std::move(f));
  }

  // Hygiene pass two: a suppression that suppressed nothing is stale.
  for (const Suppression& sup : sups) {
    if (!sup.used && is_known_rule(sup.rule)) {
      findings.push_back(
          {std::string(kSuppressionHygieneRule), file.rel_path, sup.comment_line,
           "stale suppression: no '" + sup.rule + "' finding on line " +
               std::to_string(sup.target_line) + " to suppress"});
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

int run(const Options& opts, std::ostream& out, std::ostream& err) {
  const Engine engine;
  if (opts.list_rules) {
    print_rule_catalog(engine, out);
    return 0;
  }

  std::vector<std::string> rel_paths;
  std::string source_note;
  try {
    if (!opts.paths.empty()) {
      rel_paths = opts.paths;
      std::sort(rel_paths.begin(), rel_paths.end());
      rel_paths.erase(std::unique(rel_paths.begin(), rel_paths.end()), rel_paths.end());
      source_note = "explicit file list";
    } else {
      rel_paths = collect_files(opts.root, opts.compile_commands, &source_note);
    }
  } catch (const std::exception& ex) {
    err << "rumr_lint: " << ex.what() << "\n";
    return 2;
  }
  if (rel_paths.empty()) {
    err << "rumr_lint: no files to lint under '" << opts.root << "'\n";
    return 2;
  }

  std::vector<Finding> findings;
  for (const std::string& rel : rel_paths) {
    SourceFile file;
    try {
      file = SourceFile::from_disk(opts.root + "/" + rel, rel);
    } catch (const std::exception& ex) {
      err << ex.what() << "\n";
      return 2;
    }
    std::vector<Finding> per_file = engine.lint_file(file);
    findings.insert(findings.end(), std::make_move_iterator(per_file.begin()),
                    std::make_move_iterator(per_file.end()));
  }

  if (!opts.write_baseline.empty()) {
    if (!write_baseline(findings, opts.write_baseline, err)) return 2;
    out << "rumr_lint: wrote baseline with " << findings.size() << " finding(s) to "
        << opts.write_baseline << "\n";
    return 0;
  }

  std::size_t baselined = 0;
  if (!opts.baseline.empty()) {
    std::vector<std::string> keys;
    if (!load_baseline(opts.baseline, keys, err)) return 2;
    const std::size_t before = findings.size();
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) {
                                    return std::binary_search(keys.begin(), keys.end(),
                                                              finding_key(f));
                                  }),
                   findings.end());
    baselined = before - findings.size();
  }

  if (opts.json) {
    print_json(findings, rel_paths.size(), out);
  } else {
    print_text(findings, out);
    out << "rumr_lint: " << findings.size() << " finding(s) over " << rel_paths.size()
        << " file(s) [" << source_note << "]";
    if (baselined > 0) out << ", " << baselined << " baselined";
    out << "\n";
  }
  return (!findings.empty() && opts.error_exit) ? 1 : 0;
}

}  // namespace rumr::lint
