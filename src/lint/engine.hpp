#pragma once

/// \file engine.hpp
/// Rule registry, suppression machinery, and the top-level lint driver.
///
/// Suppression grammar, scanned from comments:
///
///     // rumr-lint: allow(<rule-name>) <reason text>
///
/// A trailing comment suppresses findings of <rule-name> on its own line; a
/// standalone comment (nothing but whitespace before it) suppresses the line
/// below. Hygiene is itself enforced: unknown rule names, missing reasons,
/// and suppressions that suppress nothing are `suppression-hygiene` findings,
/// and that pseudo-rule is deliberately not suppressible.

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rule.hpp"

namespace rumr::lint {

/// One parsed `rumr-lint: allow(...)` comment.
struct Suppression {
  std::string rule;
  int comment_line = 0;
  int target_line = 0;  ///< Line whose findings this suppression covers.
  bool has_reason = false;
  bool used = false;
};

class Engine {
 public:
  Engine();  ///< Loads the default rule registry.

  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] bool is_known_rule(std::string_view name) const noexcept;

  /// Runs every applicable rule over one file, applies suppressions, and
  /// appends hygiene findings. Results are sorted by line then rule.
  [[nodiscard]] std::vector<Finding> lint_file(const SourceFile& file) const;

  /// Exposed for tests: suppressions parsed from a file's comments.
  [[nodiscard]] static std::vector<Suppression> parse_suppressions(
      const SourceFile& file, std::vector<Finding>& hygiene_out);

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Everything the CLI can configure; tests drive `run` directly.
struct Options {
  std::string root = ".";               ///< Repo root; rel_paths resolve against it.
  std::vector<std::string> paths;       ///< Explicit repo-relative files (skip scan).
  std::string compile_commands;         ///< Optional compile_commands.json path.
  std::string baseline;                 ///< Optional baseline to filter against.
  std::string write_baseline;           ///< Optional baseline to write and exit 0.
  bool json = false;                    ///< JSON reporter instead of text.
  bool error_exit = false;              ///< Findings make the exit code nonzero.
  bool list_rules = false;              ///< Print the rule catalog and exit.
};

/// Runs the whole lint: collect files, lint, report. Returns the process
/// exit code: 0 clean (or findings with error_exit off), 1 findings with
/// error_exit on, 2 on usage/IO errors.
[[nodiscard]] int run(const Options& opts, std::ostream& out, std::ostream& err);

}  // namespace rumr::lint
