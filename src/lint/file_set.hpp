#pragma once

/// \file file_set.hpp
/// Decides which files the lint looks at.
///
/// Translation units come from compile_commands.json when one is available
/// (the same source of truth clang-tidy uses; CMAKE_EXPORT_COMPILE_COMMANDS
/// is ON in the top-level CMakeLists), with a recursive directory glob as the
/// fallback; headers are always globbed, since a compile database lists only
/// TUs. Scope is the determinism-critical trees: src/, tools/, bench/ —
/// tests/ is excluded because its fixtures deliberately contain violations.

#include <string>
#include <vector>

namespace rumr::lint {

/// Repo-relative directory prefixes the lint covers.
[[nodiscard]] const std::vector<std::string>& default_scope_dirs();

/// Collects the sorted, deduplicated list of repo-relative source paths
/// (forward slashes). `compile_commands_path` may be empty: the well-known
/// build-tree locations are probed, then the glob fallback runs. When
/// `source_note` is non-null it receives a short description of which file
/// source was used (for the report footer). Throws std::runtime_error when
/// `root` does not exist.
[[nodiscard]] std::vector<std::string> collect_files(const std::string& root,
                                                     const std::string& compile_commands_path,
                                                     std::string* source_note);

}  // namespace rumr::lint
