#include "lint/file_set.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json_lite.hpp"

namespace rumr::lint {
namespace fs = std::filesystem;
namespace {

[[nodiscard]] bool has_source_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".cxx";
}

[[nodiscard]] bool is_tu_ext(std::string_view rel) {
  return rel.ends_with(".cpp") || rel.ends_with(".cc") || rel.ends_with(".cxx");
}

[[nodiscard]] bool in_scope(std::string_view rel) {
  for (const std::string& dir : default_scope_dirs()) {
    if (rel.size() > dir.size() && rel.substr(0, dir.size()) == dir && rel[dir.size()] == '/') {
      return true;
    }
  }
  return false;
}

/// All in-scope source files under root, as sorted repo-relative paths.
[[nodiscard]] std::vector<std::string> glob_scope(const fs::path& root, bool headers_only) {
  std::vector<std::string> out;
  for (const std::string& dir : default_scope_dirs()) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !has_source_ext(entry.path())) continue;
      std::string rel = fs::relative(entry.path(), root).generic_string();
      if (headers_only && is_tu_ext(rel)) continue;
      out.push_back(std::move(rel));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Reads compile_commands.json and returns the in-scope TUs it lists, as
/// repo-relative paths. Returns false when the file is absent or unusable
/// (the caller falls back to the glob).
[[nodiscard]] bool tus_from_compile_db(const fs::path& db_path, const fs::path& root,
                                       std::vector<std::string>& out) {
  std::ifstream in(db_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  util::JsonValue doc;
  try {
    doc = util::JsonValue::parse(buf.str());
  } catch (const std::exception&) {
    return false;  // A truncated database is not fatal; the glob covers us.
  }
  if (!doc.is_array()) return false;
  for (const util::JsonValue& entry : doc.as_array()) {
    const util::JsonValue* file = entry.find("file");
    if (file == nullptr) continue;
    std::error_code ec;
    const fs::path rel_path = fs::relative(fs::path(file->as_string()), root, ec);
    if (ec) continue;
    const std::string rel = rel_path.generic_string();
    if (rel.rfind("..", 0) == 0) continue;  // Outside the repo root.
    if (in_scope(rel) && is_tu_ext(rel)) out.push_back(rel);
  }
  return !out.empty();
}

}  // namespace

const std::vector<std::string>& default_scope_dirs() {
  // Immutable after initialization; shared across calls by design.
  static const std::vector<std::string> kDirs = {"src", "tools", "bench"};
  return kDirs;
}

std::vector<std::string> collect_files(const std::string& root_str,
                                       const std::string& compile_commands_path,
                                       std::string* source_note) {
  const fs::path root(root_str);
  if (!fs::is_directory(root)) {
    throw std::runtime_error("root directory not found: " + root_str);
  }

  // Candidate compile databases: the explicit one, then the conventional
  // build-tree spots (every preset exports one).
  std::vector<fs::path> candidates;
  if (!compile_commands_path.empty()) {
    candidates.emplace_back(compile_commands_path);
  } else {
    candidates.push_back(root / "compile_commands.json");
    for (const char* preset : {"release", "asan-ubsan", "tsan", "tidy"}) {
      candidates.push_back(root / "build" / preset / "compile_commands.json");
    }
  }

  std::vector<std::string> files;
  bool used_db = false;
  for (const fs::path& db : candidates) {
    if (tus_from_compile_db(db, root, files)) {
      used_db = true;
      if (source_note != nullptr) {
        *source_note = "TUs from " + db.generic_string() + " + globbed headers";
      }
      break;
    }
  }
  if (used_db) {
    // The database lists only translation units; headers are globbed.
    std::vector<std::string> headers = glob_scope(root, /*headers_only=*/true);
    files.insert(files.end(), headers.begin(), headers.end());
  } else {
    files = glob_scope(root, /*headers_only=*/false);
    if (source_note != nullptr) *source_note = "glob fallback (no compile_commands.json)";
  }

  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace rumr::lint
