#include "lint/report.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "lint/engine.hpp"

namespace rumr::lint {
namespace {

/// Minimal JSON string escaping for paths/messages (ASCII sources).
[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace

std::string finding_key(const Finding& f) {
  return f.file + "|" + f.rule + "|" + std::to_string(f.line);
}

void print_text(const std::vector<Finding>& findings, std::ostream& out) {
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": error: [" << f.rule << "] " << f.message << "\n";
  }
}

void print_json(const std::vector<Finding>& findings, std::size_t files_scanned,
                std::ostream& out) {
  out << "{\n  \"files_scanned\": " << files_scanned
      << ",\n  \"finding_count\": " << findings.size() << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \"" << json_escape(f.rule)
        << "\", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  out << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
}

void print_rule_catalog(const Engine& engine, std::ostream& out) {
  out << "rumr_lint rule catalog (suppress with: // rumr-lint: allow(<rule>) <reason>)\n\n";
  for (const auto& rule : engine.rules()) {
    out << "  " << rule->name() << "\n      " << rule->rationale() << "\n\n";
  }
  out << "  " << kSuppressionHygieneRule << " (engine-level, not suppressible)\n      "
      << kSuppressionHygieneRationale << "\n";
}

bool load_baseline(const std::string& path, std::vector<std::string>& keys_out,
                   std::ostream& err) {
  std::ifstream in(path);
  if (!in) {
    err << "rumr_lint: cannot read baseline " << path << "\n";
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty() && line.front() != '#') keys_out.push_back(line);
  }
  std::sort(keys_out.begin(), keys_out.end());
  return true;
}

bool write_baseline(const std::vector<Finding>& findings, const std::string& path,
                    std::ostream& err) {
  std::ofstream out_file(path);
  if (!out_file) {
    err << "rumr_lint: cannot write baseline " << path << "\n";
    return false;
  }
  out_file << "# rumr_lint baseline: path|rule|line, one accepted legacy finding per line.\n";
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(finding_key(f));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (const std::string& key : keys) out_file << key << "\n";
  return static_cast<bool>(out_file);
}

}  // namespace rumr::lint
