#pragma once

/// \file matrix.hpp
/// Minimal dense row-major matrix. Sized for the Multi-Installment schedule
/// solver (systems of a few hundred unknowns), not for large-scale BLAS work.

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace rumr::linalg {

/// Dense row-major matrix of doubles with bounds-checked (assert) access.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Construction from nested initializer lists, e.g. {{1,2},{3,4}}.
  /// All rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ > 0 ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
      assert(row.size() == cols_ && "ragged initializer for Matrix");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  /// n x n identity.
  [[nodiscard]] static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Matrix-vector product. Requires x.size() == cols().
  [[nodiscard]] std::vector<double> multiply(const std::vector<double>& x) const {
    assert(x.size() == cols_);
    std::vector<double> y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      double acc = 0.0;
      for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
      y[r] = acc;
    }
    return y;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace rumr::linalg
