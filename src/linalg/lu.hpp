#pragma once

/// \file lu.hpp
/// LU decomposition with partial pivoting and linear solves.

#include <vector>

#include "linalg/matrix.hpp"

namespace rumr::linalg {

/// Result of an LU factorization (Doolittle, partial pivoting). The L and U
/// factors are packed into one matrix; `pivots[k]` records the row swapped
/// into position k at step k.
struct LuDecomposition {
  Matrix lu;                      ///< Packed L (unit diagonal, below) and U (on/above).
  std::vector<std::size_t> pivots;
  int sign = 1;                   ///< Permutation parity, for the determinant.
  bool singular = false;          ///< True if a pivot was (numerically) zero.
};

/// Factors a square matrix. The input is copied.
[[nodiscard]] LuDecomposition lu_factor(Matrix a);

/// Solves LU x = b for one right-hand side. Requires a non-singular
/// factorization of matching size.
[[nodiscard]] std::vector<double> lu_solve(const LuDecomposition& f,
                                           const std::vector<double>& b);

/// Convenience: factor-and-solve A x = b. Returns an empty vector when A is
/// singular, so callers can detect infeasibility without exceptions.
[[nodiscard]] std::vector<double> solve(const Matrix& a, const std::vector<double>& b);

/// Determinant via LU (0 when singular).
[[nodiscard]] double determinant(const Matrix& a);

/// Max-norm of the residual A x - b; useful for verifying solve quality.
[[nodiscard]] double residual_inf_norm(const Matrix& a, const std::vector<double>& x,
                                       const std::vector<double>& b);

}  // namespace rumr::linalg
