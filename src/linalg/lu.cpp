#include "linalg/lu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rumr::linalg {

namespace {
constexpr double kPivotEpsilon = 1e-13;
}

LuDecomposition lu_factor(Matrix a) {
  assert(a.rows() == a.cols() && "LU requires a square matrix");
  const std::size_t n = a.rows();
  LuDecomposition f;
  f.pivots.resize(n);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude entry in column k.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(a(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(a(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    f.pivots[k] = pivot_row;
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(k, c), a(pivot_row, c));
      f.sign = -f.sign;
    }
    if (pivot_mag <= kPivotEpsilon) {
      f.singular = true;
      continue;  // Leave the column as-is; solves will refuse.
    }
    const double inv_pivot = 1.0 / a(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = a(r, k) * inv_pivot;
      a(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) a(r, c) -= factor * a(k, c);
    }
  }
  f.lu = std::move(a);
  return f;
}

std::vector<double> lu_solve(const LuDecomposition& f, const std::vector<double>& b) {
  assert(!f.singular && "lu_solve on a singular factorization");
  const std::size_t n = f.lu.rows();
  assert(b.size() == n);
  std::vector<double> x = b;

  // Apply the full row permutation first (the swap at step k touches rows
  // >= k, so interleaving it with the elimination below would clobber
  // partially eliminated entries), then forward-substitute L (unit diagonal).
  for (std::size_t k = 0; k < n; ++k) {
    if (f.pivots[k] != k) std::swap(x[k], x[f.pivots[k]]);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t r = k + 1; r < n; ++r) x[r] -= f.lu(r, k) * x[k];
  }
  // Back-substitute U.
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t c = k + 1; c < n; ++c) x[k] -= f.lu(k, c) * x[c];
    x[k] /= f.lu(k, k);
  }
  return x;
}

std::vector<double> solve(const Matrix& a, const std::vector<double>& b) {
  const LuDecomposition f = lu_factor(a);
  if (f.singular) return {};
  return lu_solve(f, b);
}

double determinant(const Matrix& a) {
  const LuDecomposition f = lu_factor(a);
  if (f.singular) return 0.0;
  double det = static_cast<double>(f.sign);
  for (std::size_t i = 0; i < a.rows(); ++i) det *= f.lu(i, i);
  return det;
}

double residual_inf_norm(const Matrix& a, const std::vector<double>& x,
                         const std::vector<double>& b) {
  const std::vector<double> ax = a.multiply(x);
  double worst = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) worst = std::max(worst, std::abs(ax[i] - b[i]));
  return worst;
}

}  // namespace rumr::linalg
