#include "api/rumr.hpp"

#include <memory>
#include <utility>

namespace rumr {

Run::Run()
    : desc_{platform::StarPlatform::homogeneous(platform::HomogeneousParams{})} {}

Run Run::from_file(const std::string& path) {
  Run run;
  run.desc_ = config::run_from_config(config::ConfigFile::load(path));
  return run;
}

Run& Run::platform(platform::StarPlatform p) {
  desc_.platform = std::move(p);
  return *this;
}

Run& Run::workload(double units) {
  desc_.w_total = units;
  return *this;
}

Run& Run::algorithm(std::string name) {
  desc_.algorithm = std::move(name);
  return *this;
}

Run& Run::known_error(double e) {
  desc_.known_error = e;
  return *this;
}

Run& Run::error(double e) {
  desc_.sim_options.comm_error = stats::ErrorModel::truncated_normal(e);
  desc_.sim_options.comp_error = stats::ErrorModel::truncated_normal(e);
  return *this;
}

Run& Run::seed(std::uint64_t s) {
  desc_.sim_options.seed = s;
  return *this;
}

Run& Run::repetitions(std::size_t n) {
  desc_.repetitions = n;
  return *this;
}

Run& Run::record_trace(bool on) {
  record_trace_ = on;
  return *this;
}

Run& Run::sim_options(sim::SimOptions options) {
  desc_.sim_options = std::move(options);
  return *this;
}

Run& Run::audit(bool on) {
  audit_ = on;
  return *this;
}

RunResult Run::execute_one(std::uint64_t rep_seed, bool trace) const {
  const std::unique_ptr<sim::SchedulerPolicy> policy = config::make_policy(desc_);
  sim::SimOptions options = desc_.sim_options;
  options.seed = rep_seed;
  options.record_trace = trace;

  RunResult out;
  out.sim = simulate(desc_.platform, *policy, options);
  out.makespan = out.sim.makespan;
  out.metrics = out.sim.metrics;

  if (audit_) {
    check::TraceAuditOptions audit_options;
    audit_options.work_tolerance = options.work_tolerance;
    audit_options.uplink_channels = options.uplink_channels;
    check::audit_sim_result(out.sim, desc_.platform, desc_.w_total, audit_options)
        .throw_if_failed();
  }

  out.trace = std::move(out.sim.trace);
  return out;
}

RunResult Run::execute() const {
  return execute_one(desc_.sim_options.seed, record_trace_);
}

std::vector<RunResult> Run::execute_all() const {
  std::vector<RunResult> results;
  results.reserve(desc_.repetitions);
  for (std::size_t rep = 0; rep < desc_.repetitions; ++rep) {
    const bool trace = record_trace_ && rep + 1 == desc_.repetitions;
    results.push_back(execute_one(stats::mix_seed(desc_.sim_options.seed, rep), trace));
  }
  return results;
}

}  // namespace rumr
