#include "api/rumr.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace rumr {

Run::Run()
    : desc_{platform::StarPlatform::homogeneous(platform::HomogeneousParams{})} {}

Run Run::from_file(const std::string& path) {
  Run run;
  run.desc_ = config::run_from_config(config::ConfigFile::load(path));
  return run;
}

Run& Run::platform(platform::StarPlatform p) {
  desc_.platform = std::move(p);
  return *this;
}

Run& Run::workload(double units) {
  desc_.w_total = units;
  return *this;
}

Run& Run::algorithm(std::string name) {
  desc_.algorithm = std::move(name);
  return *this;
}

Run& Run::known_error(double e) {
  desc_.known_error = e;
  return *this;
}

Run& Run::error(double e) {
  desc_.sim_options.comm_error = stats::ErrorModel::truncated_normal(e);
  desc_.sim_options.comp_error = stats::ErrorModel::truncated_normal(e);
  return *this;
}

Run& Run::seed(std::uint64_t s) {
  desc_.sim_options.seed = s;
  return *this;
}

Run& Run::repetitions(std::size_t n) {
  desc_.repetitions = n;
  return *this;
}

Run& Run::faults(faults::FaultSpec spec) {
  desc_.sim_options.faults = std::move(spec);
  return *this;
}

Run& Run::link_faults(faults::LinkFaultSpec spec) {
  desc_.sim_options.link = spec;
  return *this;
}

Run& Run::retransmit(bool on) {
  desc_.sim_options.retransmit.enabled = on;
  return *this;
}

Run& Run::retransmit(sim::SimOptions::RetransmitOptions options) {
  desc_.sim_options.retransmit = options;
  return *this;
}

Run& Run::checkpoint_interval(double seconds) {
  desc_.sim_options.checkpoint.interval = seconds;
  return *this;
}

Run& Run::record_trace(bool on) {
  record_trace_ = on;
  return *this;
}

Run& Run::sim_options(sim::SimOptions options) {
  desc_.sim_options = std::move(options);
  return *this;
}

Run& Run::audit(bool on) {
  audit_ = on;
  return *this;
}

RunResult Run::execute_one(std::uint64_t rep_seed, bool trace) const {
  const std::unique_ptr<sim::SchedulerPolicy> policy = config::make_policy(desc_);
  sim::SimOptions options = desc_.sim_options;
  options.seed = rep_seed;
  options.record_trace = trace;

  RunResult out;
  out.sim = simulate(desc_.platform, *policy, options);
  out.makespan = out.sim.makespan;
  out.metrics = out.sim.metrics;

  if (audit_) {
    check::TraceAuditOptions audit_options;
    audit_options.work_tolerance = options.work_tolerance;
    audit_options.uplink_channels = options.uplink_channels;
    check::audit_sim_result(out.sim, desc_.platform, desc_.w_total, audit_options)
        .throw_if_failed();
  }

  out.trace = std::move(out.sim.trace);
  return out;
}

RunResult Run::execute() const {
  return execute_one(desc_.sim_options.seed, record_trace_);
}

std::vector<RunResult> Run::execute_all() const {
  std::vector<RunResult> results;
  results.reserve(desc_.repetitions);
  for (std::size_t rep = 0; rep < desc_.repetitions; ++rep) {
    const bool trace = record_trace_ && rep + 1 == desc_.repetitions;
    results.push_back(execute_one(stats::mix_seed(desc_.sim_options.seed, rep), trace));
  }
  return results;
}

JobsRun Run::jobs() const {
  JobsRun jobs_run;
  jobs_run.platform_ = desc_.platform;
  jobs_run.options_.algorithm = desc_.algorithm;
  jobs_run.options_.known_error = desc_.known_error;
  jobs_run.options_.sim = desc_.sim_options;
  jobs_run.audit_ = audit_;
  return jobs_run;
}

JobsRun::JobsRun()
    : platform_(platform::StarPlatform::homogeneous(platform::HomogeneousParams{})) {}

JobsRun JobsRun::from_file(const std::string& path) {
  JobsRun run;
  jobs::JobsDescription description =
      jobs::jobs_from_config(config::ConfigFile::load(path));
  run.platform_ = std::move(description.platform);
  run.options_ = std::move(description.options);
  return run;
}

JobsRun& JobsRun::platform(platform::StarPlatform p) {
  platform_ = std::move(p);
  return *this;
}

JobsRun& JobsRun::stream(jobs::JobStreamSpec spec) {
  options_.stream = std::move(spec);
  pending_load_ = 0.0;
  return *this;
}

JobsRun& JobsRun::poisson(double arrival_rate, std::size_t num_jobs, double mean_size) {
  options_.stream = jobs::JobStreamSpec::poisson(arrival_rate, num_jobs, mean_size);
  pending_load_ = 0.0;
  return *this;
}

JobsRun& JobsRun::poisson_load(double load, std::size_t num_jobs, double mean_size) {
  options_.stream = jobs::JobStreamSpec::poisson(1.0, num_jobs, mean_size);
  pending_load_ = load;
  return *this;
}

JobsRun& JobsRun::sharing(jobs::SharingPolicy policy) {
  options_.sharing = policy;
  return *this;
}

JobsRun& JobsRun::partitions(std::size_t count) {
  options_.partitions = count;
  return *this;
}

JobsRun& JobsRun::max_degree(std::size_t cap) {
  options_.max_degree = cap;
  return *this;
}

JobsRun& JobsRun::discipline(jobs::QueueDiscipline discipline) {
  options_.discipline = discipline;
  return *this;
}

JobsRun& JobsRun::admission(jobs::AdmissionPolicy policy) {
  options_.admission = policy;
  return *this;
}

JobsRun& JobsRun::queue_capacity(std::size_t capacity) {
  options_.queue_capacity = capacity;
  return *this;
}

JobsRun& JobsRun::algorithm(std::string name) {
  options_.algorithm = std::move(name);
  return *this;
}

JobsRun& JobsRun::known_error(double e) {
  options_.known_error = e;
  return *this;
}

JobsRun& JobsRun::error(double e) {
  options_.sim.comm_error = stats::ErrorModel::truncated_normal(e);
  options_.sim.comp_error = stats::ErrorModel::truncated_normal(e);
  return *this;
}

JobsRun& JobsRun::seed(std::uint64_t s) {
  options_.sim.seed = s;
  return *this;
}

JobsRun& JobsRun::record_trace(bool on) {
  options_.record_trace = on;
  return *this;
}

JobsRun& JobsRun::sim_options(sim::SimOptions options) {
  options_.sim = std::move(options);
  return *this;
}

JobsRun& JobsRun::audit(bool on) {
  audit_ = on;
  return *this;
}

jobs::ServiceResult JobsRun::execute() const {
  jobs::JobsOptions options = options_;
  if (pending_load_ > 0.0) {
    options.stream.arrival_rate = jobs::JobStreamSpec::rate_for_load(
        platform_, pending_load_, options.stream.mean_size);
  }
  jobs::ServiceResult result = jobs::run_jobs(platform_, options);
  if (audit_) {
    check::audit_service_result(result, platform_, options).throw_if_failed();
  }
  return result;
}

// --- Race builder ------------------------------------------------------------

Race::Race()
    : platform_(sweep::SweepPlatform::from_config(sweep::PlatformConfig{})),
      policies_(sweep::racing_competitors()) {}

Race& Race::platform(platform::StarPlatform p, std::string label) {
  platform_ = {std::move(label), std::move(p)};
  return *this;
}

Race& Race::platform(const sweep::PlatformConfig& config) {
  platform_ = sweep::SweepPlatform::from_config(config);
  return *this;
}

Race& Race::error(double e) {
  error_ = e;
  return *this;
}

Race& Race::policies(std::vector<sweep::AlgorithmSpec> specs) {
  policies_ = std::move(specs);
  policy_problems_.clear();
  return *this;
}

Race& Race::policies(const std::vector<std::string>& names) {
  policies_.clear();
  policy_problems_.clear();
  policies_.reserve(names.size());
  // Same up-front probe as Sweep::policies: report unknown names from
  // validate() instead of aborting mid-race.
  const platform::StarPlatform probe =
      platform::StarPlatform::homogeneous(platform::HomogeneousParams{});
  for (const std::string& name : names) {
    try {
      (void)config::make_policy(name, probe, 100.0, 0.0);
    } catch (const config::ConfigError& error) {
      policy_problems_.emplace_back("policy \"" + name + "\": " + error.what());
    }
    sweep::AlgorithmSpec spec;
    spec.name = name;
    spec.make = [name](const platform::StarPlatform& p, double w_total, double error) {
      return config::make_policy(name, p, w_total, error);
    };
    policies_.push_back(std::move(spec));
  }
  return *this;
}

Race& Race::workload(double units) {
  workload_ = units;
  return *this;
}

Race& Race::delta(double d) {
  delta_ = d;
  return *this;
}

Race& Race::block(std::size_t reps_per_round) {
  block_ = reps_per_round;
  return *this;
}

Race& Race::budget(std::size_t max_reps) {
  budget_ = max_reps;
  return *this;
}

Race& Race::threads(std::size_t n) {
  threads_ = n;
  return *this;
}

Race& Race::seed(std::uint64_t s) {
  seed_ = s;
  return *this;
}

Race& Race::objective(race::Objective o) {
  objective_ = o;
  return *this;
}

Race& Race::distribution(stats::ErrorDistribution d) {
  distribution_ = d;
  return *this;
}

Race& Race::audit(bool on) {
  audit_ = on;
  return *this;
}

race::RaceOptions Race::race_options() const {
  race::RaceOptions options;
  options.delta = delta_;
  options.block = block_;
  options.max_reps = budget_;
  options.threads = threads_;
  options.base_seed = seed_;
  options.objective = objective_;
  options.w_total = workload_;
  options.distribution = distribution_;
  options.audit_runs = audit_;
  options.audit_result = audit_;
  return options;
}

std::vector<std::string> Race::validate() const {
  std::vector<std::string> problems = race_options().validate();
  if (policies_.empty()) problems.emplace_back("policy line-up is empty");
  for (const std::string& p : policy_problems_) problems.push_back(p);
  if (!std::isfinite(error_) || error_ < 0.0) {
    problems.emplace_back("error level must be finite and non-negative");
  }
  return problems;
}

race::RaceResult Race::execute() const {
  const std::vector<std::string> problems = validate();
  if (!problems.empty()) {
    std::string joined = "invalid Race description:";
    for (const std::string& p : problems) joined += "\n  - " + p;
    throw std::invalid_argument(joined);
  }
  return race::race_cell(platform_, policies_, error_, race_options());
}

// --- Sweep builder -----------------------------------------------------------

Sweep::Sweep()
    : policies_(sweep::paper_competitors()),
      errors_(sweep::error_axis()),
      loads_(sweep::load_axis()) {}

Sweep& Sweep::grid(const sweep::GridSpec& spec) { return platforms(sweep::make_grid(spec)); }

Sweep& Sweep::platforms(std::vector<sweep::PlatformConfig> configs) {
  platforms_ = sweep::wrap_grid(configs);
  return *this;
}

Sweep& Sweep::platforms(std::vector<sweep::SweepPlatform> list) {
  platforms_ = std::move(list);
  return *this;
}

Sweep& Sweep::platform(platform::StarPlatform p, std::string label) {
  platforms_.push_back({std::move(label), std::move(p)});
  return *this;
}

Sweep& Sweep::errors(std::vector<double> axis) {
  errors_ = std::move(axis);
  return *this;
}

Sweep& Sweep::policies(std::vector<sweep::AlgorithmSpec> specs) {
  policies_ = std::move(specs);
  policy_problems_.clear();
  return *this;
}

Sweep& Sweep::policies(const std::vector<std::string>& names) {
  policies_.clear();
  policy_problems_.clear();
  policies_.reserve(names.size());
  // Probe each name once on a throwaway platform so validate() can report
  // unknown names up front instead of aborting mid-sweep.
  const platform::StarPlatform probe =
      platform::StarPlatform::homogeneous(platform::HomogeneousParams{});
  for (const std::string& name : names) {
    try {
      (void)config::make_policy(name, probe, 100.0, 0.0);
    } catch (const config::ConfigError& error) {
      policy_problems_.emplace_back("policy \"" + name + "\": " + error.what());
    }
    sweep::AlgorithmSpec spec;
    spec.name = name;
    spec.make = [name](const platform::StarPlatform& p, double w_total, double error) {
      return config::make_policy(name, p, w_total, error);
    };
    policies_.push_back(std::move(spec));
  }
  return *this;
}

Sweep& Sweep::workload(double units) {
  workload_ = units;
  return *this;
}

Sweep& Sweep::distribution(stats::ErrorDistribution d) {
  distribution_ = d;
  return *this;
}

Sweep& Sweep::faults(faults::FaultSpec spec) {
  faults_ = std::move(spec);
  return *this;
}

Sweep& Sweep::fault_tolerance(sim::SimOptions::FaultToleranceOptions tolerance) {
  fault_tolerance_ = tolerance;
  return *this;
}

Sweep& Sweep::jobs(jobs::JobsOptions base) {
  jobs_base_ = std::move(base);
  jobs_mode_ = true;
  return *this;
}

Sweep& Sweep::loads(std::vector<double> axis) {
  loads_ = std::move(axis);
  jobs_mode_ = true;
  return *this;
}

Sweep& Sweep::race(double delta) {
  race_mode_ = true;
  race_delta_ = delta;
  return *this;
}

Sweep& Sweep::objective(race::Objective o) {
  race_objective_ = o;
  return *this;
}

Sweep& Sweep::on_cell(race::RaceConsumer consumer) {
  race_consumer_ = std::move(consumer);
  return *this;
}

Sweep& Sweep::reps(std::size_t n) {
  reps_ = n;
  return *this;
}

Sweep& Sweep::threads(std::size_t n) {
  threads_ = n;
  return *this;
}

Sweep& Sweep::seed(std::uint64_t s) {
  seed_ = s;
  return *this;
}

Sweep& Sweep::rep_block(std::size_t n) {
  rep_block_ = n;
  return *this;
}

Sweep& Sweep::audit(bool on) {
  audit_ = on;
  return *this;
}

Sweep& Sweep::on_cell(sweep::CellConsumer consumer) {
  cell_consumer_ = std::move(consumer);
  return *this;
}

Sweep& Sweep::on_cell(sweep::JobsCellConsumer consumer) {
  jobs_consumer_ = std::move(consumer);
  return *this;
}

Sweep& Sweep::buffer(bool on) {
  buffer_ = on;
  return *this;
}

sweep::SweepOptions Sweep::closed_options() const {
  sweep::SweepOptions options;
  options.errors = errors_;
  options.repetitions = reps_ == 0 ? 40 : reps_;
  options.w_total = workload_;
  options.threads = threads_;
  options.base_seed = seed_;
  options.distribution = distribution_;
  options.faults = faults_;
  options.fault_tolerance = fault_tolerance_;
  options.audit_runs = audit_;
  options.rep_block = rep_block_;
  return options;
}

sweep::JobsSweepOptions Sweep::open_options() const {
  sweep::JobsSweepOptions options;
  options.loads = loads_;
  options.repetitions = reps_ == 0 ? 3 : reps_;
  options.threads = threads_;
  options.base_seed = seed_;
  options.base = jobs_base_;
  options.audit_runs = audit_;
  options.rep_block = rep_block_;
  return options;
}

race::RaceOptions Sweep::race_options() const {
  race::RaceOptions options;
  options.delta = race_delta_;
  options.block = rep_block_ == 0 ? 8 : rep_block_;
  options.max_reps = reps_ == 0 ? 256 : reps_;
  options.threads = threads_;
  options.base_seed = seed_;
  options.objective = race_objective_;
  options.w_total = workload_;
  options.distribution = distribution_;
  options.audit_runs = audit_;
  options.audit_result = audit_;
  return options;
}

std::vector<std::string> Sweep::validate() const {
  std::vector<std::string> problems;
  if (platforms_.empty()) {
    problems.emplace_back(
        "platform axis is empty — call grid(), platforms(), or platform() first");
  }
  if (jobs_mode_ && race_mode_) {
    problems.emplace_back(
        "jobs()/loads() and race() were both called — a sweep is either "
        "open-system or raced, not both");
    return problems;
  }
  if (race_mode_) {
    std::vector<std::string> race_problems = race_options().validate();
    for (std::string& p : race_problems) problems.push_back(std::move(p));
    if (errors_.empty()) problems.emplace_back("error axis is empty");
    for (double e : errors_) {
      if (!std::isfinite(e) || e < 0.0) {
        problems.emplace_back("error axis values must be finite and non-negative");
        break;
      }
    }
    if (policies_.empty()) problems.emplace_back("policy line-up is empty");
    for (const std::string& p : policy_problems_) problems.push_back(p);
    if (faults_.enabled()) {
      problems.emplace_back(
          "worker faults are set but the race engine does not inject faults — "
          "race the fault-free objective or use a closed-system sweep");
    }
    if (cell_consumer_) {
      problems.emplace_back(
          "a closed-system on_cell consumer is set but the sweep is raced — "
          "use the race::RaceConsumer overload");
    }
    if (jobs_consumer_) {
      problems.emplace_back(
          "an open-system on_cell consumer is set but the sweep is raced — "
          "use the race::RaceConsumer overload");
    }
    if (!buffer_ && !race_consumer_) {
      problems.emplace_back(
          "buffering is disabled and no on_cell consumer is set — every cell would "
          "be discarded");
    }
    return problems;
  }

  std::size_t reps = 0;
  std::size_t axis = 0;
  if (jobs_mode_) {
    const sweep::JobsSweepOptions options = open_options();
    for (std::string& p : options.validate()) problems.push_back(std::move(p));
    if (cell_consumer_) {
      problems.emplace_back(
          "a closed-system on_cell consumer is set but the sweep is open-system — "
          "use the sweep::JobsCellConsumer overload");
    }
    if (race_consumer_) {
      problems.emplace_back(
          "a race on_cell consumer is set but the sweep is open-system — "
          "call race() to switch modes, or use the sweep::JobsCellConsumer overload");
    }
    if (!buffer_ && !jobs_consumer_) {
      problems.emplace_back(
          "buffering is disabled and no on_cell consumer is set — every cell would "
          "be discarded");
    }
    reps = options.repetitions;
    axis = options.loads.size();
  } else {
    const sweep::SweepOptions options = closed_options();
    for (std::string& p : options.validate()) problems.push_back(std::move(p));
    if (policies_.empty()) problems.emplace_back("policy line-up is empty");
    for (const std::string& p : policy_problems_) problems.push_back(p);
    if (jobs_consumer_) {
      problems.emplace_back(
          "an open-system on_cell consumer is set but the sweep is closed-system — "
          "call jobs() or loads() to switch modes, or use the sweep::CellConsumer "
          "overload");
    }
    if (race_consumer_) {
      problems.emplace_back(
          "a race on_cell consumer is set but the sweep is closed-system — "
          "call race() to switch modes, or use the sweep::CellConsumer overload");
    }
    if (!buffer_ && !cell_consumer_) {
      problems.emplace_back(
          "buffering is disabled and no on_cell consumer is set — every cell would "
          "be discarded");
    }
    reps = options.repetitions;
    axis = options.errors.size();
  }

  if (rep_block_ > reps && reps > 0) {
    problems.emplace_back("rep_block (" + std::to_string(rep_block_) +
                          ") exceeds repetitions (" + std::to_string(reps) +
                          ") — shards cannot be larger than a cell");
  }
  const std::size_t shards =
      platforms_.size() * axis * sweep::shards_per_site(reps, rep_block_);
  if (threads_ > shards && shards > 0) {
    problems.emplace_back("threads (" + std::to_string(threads_) +
                          ") exceeds the total shard count (" + std::to_string(shards) +
                          ") — the extra threads would idle; lower threads or rep_block");
  }
  return problems;
}

void Sweep::throw_if_invalid(const char* what) const {
  const std::vector<std::string> problems = validate();
  if (problems.empty()) return;
  std::string joined = what;
  for (const std::string& p : problems) joined += "\n  - " + p;
  throw std::invalid_argument(joined);
}

std::vector<sweep::SweepCell> Sweep::execute() const {
  if (jobs_mode_) {
    throw std::invalid_argument("this Sweep is in open-system mode — call execute_jobs()");
  }
  if (race_mode_) {
    throw std::invalid_argument("this Sweep is in race mode — call execute_race()");
  }
  throw_if_invalid("invalid Sweep description:");

  std::vector<sweep::SweepCell> cells;
  sweep::run_sweep_streaming(platforms_, policies_, closed_options(),
                             [this, &cells](const sweep::SweepCell& cell) {
                               if (cell_consumer_) cell_consumer_(cell);
                               if (buffer_) cells.push_back(cell);
                             });
  // Site completion order is scheduling-dependent; the buffered view is not.
  std::sort(cells.begin(), cells.end(),
            [](const sweep::SweepCell& a, const sweep::SweepCell& b) {
              return std::tie(a.platform_index, a.error_index, a.algorithm_index) <
                     std::tie(b.platform_index, b.error_index, b.algorithm_index);
            });
  return cells;
}

std::vector<sweep::JobsSweepCell> Sweep::execute_jobs() const {
  if (!jobs_mode_) {
    throw std::invalid_argument(
        "this Sweep is closed-system — call jobs() or loads() first, or execute()");
  }
  throw_if_invalid("invalid Sweep description:");

  std::vector<sweep::JobsSweepCell> cells;
  sweep::run_jobs_sweep(platforms_, open_options(),
                        [this, &cells](const sweep::JobsSweepCell& cell) {
                          if (jobs_consumer_) jobs_consumer_(cell);
                          if (buffer_) cells.push_back(cell);
                        });
  std::sort(cells.begin(), cells.end(),
            [](const sweep::JobsSweepCell& a, const sweep::JobsSweepCell& b) {
              return std::tie(a.platform_index, a.load_index) <
                     std::tie(b.platform_index, b.load_index);
            });
  return cells;
}

std::vector<race::RaceCell> Sweep::execute_race() const {
  if (!race_mode_) {
    throw std::invalid_argument("this Sweep is not raced — call race() first");
  }
  throw_if_invalid("invalid Sweep description:");

  std::vector<race::RaceCell> cells;
  race::run_race_sweep(platforms_, policies_, errors_, race_options(),
                       [this, &cells](const race::RaceCell& cell) {
                         if (race_consumer_) race_consumer_(cell);
                         if (buffer_) cells.push_back(cell);
                       });
  std::sort(cells.begin(), cells.end(),
            [](const race::RaceCell& a, const race::RaceCell& b) {
              return std::tie(a.platform_index, a.error_index) <
                     std::tie(b.platform_index, b.error_index);
            });
  return cells;
}

// --- Serve builder -----------------------------------------------------------

Serve::Serve() = default;

Serve Serve::from_file(const std::string& path) {
  Serve serve;
  serve.options_ = serve::server_options_from_config(config::ConfigFile::load(path));
  return serve;
}

Serve& Serve::threads(std::size_t n) {
  options_.threads = n;
  return *this;
}

Serve& Serve::batch_threads(std::size_t n) {
  options_.batch_threads = n;
  return *this;
}

Serve& Serve::cache_capacity(std::size_t entries) {
  options_.cache_capacity = entries;
  return *this;
}

Serve& Serve::cache_max_bytes(std::size_t bytes) {
  options_.cache_max_bytes = bytes;
  return *this;
}

Serve& Serve::cache_shards(std::size_t n) {
  options_.cache_shards = n;
  return *this;
}

Serve& Serve::queue_capacity(std::size_t n) {
  options_.queue_capacity = n;
  return *this;
}

Serve& Serve::discipline(jobs::QueueDiscipline discipline) {
  options_.discipline = discipline;
  return *this;
}

Serve& Serve::admission(jobs::AdmissionPolicy policy) {
  options_.admission = policy;
  return *this;
}

Serve& Serve::audit(bool on) {
  options_.audit = on;
  return *this;
}

std::vector<std::string> Serve::validate() const { return options_.validate(); }

std::unique_ptr<serve::Server> Serve::make_server() const {
  return std::make_unique<serve::Server>(options_);
}

obs::ServeStats Serve::run(std::istream& in, std::ostream& out) const {
  serve::Server server(options_);
  server.serve_stream(in, out);
  server.wait_idle();
  const obs::ServeStats stats = server.stats();
  if (options_.audit) check::audit_serve_stats(stats, /*drained=*/true).throw_if_failed();
  return stats;
}

}  // namespace rumr
