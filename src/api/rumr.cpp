#include "api/rumr.hpp"

#include <memory>
#include <utility>

namespace rumr {

Run::Run()
    : desc_{platform::StarPlatform::homogeneous(platform::HomogeneousParams{})} {}

Run Run::from_file(const std::string& path) {
  Run run;
  run.desc_ = config::run_from_config(config::ConfigFile::load(path));
  return run;
}

Run& Run::platform(platform::StarPlatform p) {
  desc_.platform = std::move(p);
  return *this;
}

Run& Run::workload(double units) {
  desc_.w_total = units;
  return *this;
}

Run& Run::algorithm(std::string name) {
  desc_.algorithm = std::move(name);
  return *this;
}

Run& Run::known_error(double e) {
  desc_.known_error = e;
  return *this;
}

Run& Run::error(double e) {
  desc_.sim_options.comm_error = stats::ErrorModel::truncated_normal(e);
  desc_.sim_options.comp_error = stats::ErrorModel::truncated_normal(e);
  return *this;
}

Run& Run::seed(std::uint64_t s) {
  desc_.sim_options.seed = s;
  return *this;
}

Run& Run::repetitions(std::size_t n) {
  desc_.repetitions = n;
  return *this;
}

Run& Run::faults(faults::FaultSpec spec) {
  desc_.sim_options.faults = std::move(spec);
  return *this;
}

Run& Run::link_faults(faults::LinkFaultSpec spec) {
  desc_.sim_options.link = spec;
  return *this;
}

Run& Run::retransmit(bool on) {
  desc_.sim_options.retransmit.enabled = on;
  return *this;
}

Run& Run::retransmit(sim::SimOptions::RetransmitOptions options) {
  desc_.sim_options.retransmit = options;
  return *this;
}

Run& Run::checkpoint_interval(double seconds) {
  desc_.sim_options.checkpoint.interval = seconds;
  return *this;
}

Run& Run::record_trace(bool on) {
  record_trace_ = on;
  return *this;
}

Run& Run::sim_options(sim::SimOptions options) {
  desc_.sim_options = std::move(options);
  return *this;
}

Run& Run::audit(bool on) {
  audit_ = on;
  return *this;
}

RunResult Run::execute_one(std::uint64_t rep_seed, bool trace) const {
  const std::unique_ptr<sim::SchedulerPolicy> policy = config::make_policy(desc_);
  sim::SimOptions options = desc_.sim_options;
  options.seed = rep_seed;
  options.record_trace = trace;

  RunResult out;
  out.sim = simulate(desc_.platform, *policy, options);
  out.makespan = out.sim.makespan;
  out.metrics = out.sim.metrics;

  if (audit_) {
    check::TraceAuditOptions audit_options;
    audit_options.work_tolerance = options.work_tolerance;
    audit_options.uplink_channels = options.uplink_channels;
    check::audit_sim_result(out.sim, desc_.platform, desc_.w_total, audit_options)
        .throw_if_failed();
  }

  out.trace = std::move(out.sim.trace);
  return out;
}

RunResult Run::execute() const {
  return execute_one(desc_.sim_options.seed, record_trace_);
}

std::vector<RunResult> Run::execute_all() const {
  std::vector<RunResult> results;
  results.reserve(desc_.repetitions);
  for (std::size_t rep = 0; rep < desc_.repetitions; ++rep) {
    const bool trace = record_trace_ && rep + 1 == desc_.repetitions;
    results.push_back(execute_one(stats::mix_seed(desc_.sim_options.seed, rep), trace));
  }
  return results;
}

JobsRun Run::jobs() const {
  JobsRun jobs_run;
  jobs_run.platform_ = desc_.platform;
  jobs_run.options_.algorithm = desc_.algorithm;
  jobs_run.options_.known_error = desc_.known_error;
  jobs_run.options_.sim = desc_.sim_options;
  jobs_run.audit_ = audit_;
  return jobs_run;
}

JobsRun::JobsRun()
    : platform_(platform::StarPlatform::homogeneous(platform::HomogeneousParams{})) {}

JobsRun JobsRun::from_file(const std::string& path) {
  JobsRun run;
  jobs::JobsDescription description =
      jobs::jobs_from_config(config::ConfigFile::load(path));
  run.platform_ = std::move(description.platform);
  run.options_ = std::move(description.options);
  return run;
}

JobsRun& JobsRun::platform(platform::StarPlatform p) {
  platform_ = std::move(p);
  return *this;
}

JobsRun& JobsRun::stream(jobs::JobStreamSpec spec) {
  options_.stream = std::move(spec);
  pending_load_ = 0.0;
  return *this;
}

JobsRun& JobsRun::poisson(double arrival_rate, std::size_t num_jobs, double mean_size) {
  options_.stream = jobs::JobStreamSpec::poisson(arrival_rate, num_jobs, mean_size);
  pending_load_ = 0.0;
  return *this;
}

JobsRun& JobsRun::poisson_load(double load, std::size_t num_jobs, double mean_size) {
  options_.stream = jobs::JobStreamSpec::poisson(1.0, num_jobs, mean_size);
  pending_load_ = load;
  return *this;
}

JobsRun& JobsRun::sharing(jobs::SharingPolicy policy) {
  options_.sharing = policy;
  return *this;
}

JobsRun& JobsRun::partitions(std::size_t count) {
  options_.partitions = count;
  return *this;
}

JobsRun& JobsRun::max_degree(std::size_t cap) {
  options_.max_degree = cap;
  return *this;
}

JobsRun& JobsRun::discipline(jobs::QueueDiscipline discipline) {
  options_.discipline = discipline;
  return *this;
}

JobsRun& JobsRun::admission(jobs::AdmissionPolicy policy) {
  options_.admission = policy;
  return *this;
}

JobsRun& JobsRun::queue_capacity(std::size_t capacity) {
  options_.queue_capacity = capacity;
  return *this;
}

JobsRun& JobsRun::algorithm(std::string name) {
  options_.algorithm = std::move(name);
  return *this;
}

JobsRun& JobsRun::known_error(double e) {
  options_.known_error = e;
  return *this;
}

JobsRun& JobsRun::error(double e) {
  options_.sim.comm_error = stats::ErrorModel::truncated_normal(e);
  options_.sim.comp_error = stats::ErrorModel::truncated_normal(e);
  return *this;
}

JobsRun& JobsRun::seed(std::uint64_t s) {
  options_.sim.seed = s;
  return *this;
}

JobsRun& JobsRun::record_trace(bool on) {
  options_.record_trace = on;
  return *this;
}

JobsRun& JobsRun::sim_options(sim::SimOptions options) {
  options_.sim = std::move(options);
  return *this;
}

JobsRun& JobsRun::audit(bool on) {
  audit_ = on;
  return *this;
}

jobs::ServiceResult JobsRun::execute() const {
  jobs::JobsOptions options = options_;
  if (pending_load_ > 0.0) {
    options.stream.arrival_rate = jobs::JobStreamSpec::rate_for_load(
        platform_, pending_load_, options.stream.mean_size);
  }
  jobs::ServiceResult result = jobs::run_jobs(platform_, options);
  if (audit_) {
    check::audit_service_result(result, platform_, options).throw_if_failed();
  }
  return result;
}

}  // namespace rumr
