#pragma once

/// \file rumr.hpp
/// Single-include public API facade for the RUMR scheduling library.
///
/// `#include "api/rumr.hpp"` is the supported way to consume the library:
/// it re-exports every public subsystem header (platform description, the
/// UMR/RUMR solvers, the simulation engine's result types, observability,
/// sweeps, reporting, invariant audits) and adds the `rumr::Run` builder —
/// a declarative front end that turns a run description into an executed,
/// audited result without touching engine internals.
///
///   rumr::RunResult r = rumr::Run()
///                           .platform(cluster)
///                           .workload(1000.0)
///                           .algorithm("rumr")
///                           .known_error(0.3)
///                           .error(0.3)
///                           .execute();
///   std::printf("makespan %.2f, uplink %.0f%% busy\n", r.makespan,
///               100.0 * r.metrics.engine.uplink_utilization);
///
/// Every execute() self-audits: the run's invariants (work conservation,
/// resource serialization, the observability identities) are verified by
/// check::audit_sim_result before the result is returned, and a violation
/// raises check::CheckError. Disable with .audit(false) if you are
/// deliberately constructing degenerate runs.
///
/// Grid studies go through the `rumr::Sweep` builder — the single public
/// entry point onto the sharded streaming sweep engine:
///
///   auto cells = rumr::Sweep()
///                    .platforms(sweep::make_grid(sweep::GridSpec::decimated()))
///                    .errors(sweep::error_axis())
///                    .policies({"rumr", "umr", "factoring"})
///                    .reps(50)
///                    .threads(0)
///                    .on_cell([](const sweep::SweepCell& c) { /* stream */ })
///                    .execute();
///
/// sweep::run_sweep remains as a thin buffering compatibility wrapper over
/// the same engine.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "baselines/factoring.hpp"
#include "baselines/fsc.hpp"
#include "baselines/loop_scheduling.hpp"
#include "baselines/multi_installment.hpp"
#include "baselines/static_sequence.hpp"
#include "check/check.hpp"
#include "check/des_audit.hpp"
#include "check/merge_audit.hpp"
#include "check/serve_audit.hpp"
#include "check/service_audit.hpp"
#include "check/trace_audit.hpp"
#include "config/run_description.hpp"
#include "core/adaptive_rumr.hpp"
#include "core/rumr.hpp"
#include "core/umr.hpp"
#include "core/umr_policy.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/job_stream.hpp"
#include "jobs/jobs_config.hpp"
#include "check/race_audit.hpp"
#include "obs/metrics.hpp"
#include "platform/platform.hpp"
#include "race/bounds.hpp"
#include "race/race.hpp"
#include "race/result.hpp"
#include "report/ascii_plot.hpp"
#include "report/csv.hpp"
#include "report/jobs_io.hpp"
#include "report/series.hpp"
#include "report/table.hpp"
#include "serve/plan_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/serve_config.hpp"
#include "serve/server.hpp"
#include "sim/master_worker.hpp"
#include "sim/trace.hpp"
#include "sim/trace_json.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "sweep/grid.hpp"
#include "sweep/runner.hpp"
#include "sweep/scheduler_factory.hpp"

namespace rumr {

/// Everything one executed repetition produced.
struct RunResult {
  double makespan = 0.0;
  /// DES kernel, engine, and fault-layer statistics (always collected).
  obs::RunMetrics metrics;
  /// Gantt/trace spans; populated only on a traced repetition.
  sim::Trace trace;
  /// The engine's full result record (per-worker outcomes, fault summary).
  sim::SimResult sim;
};

/// Builder for a single described run (or a small repetition batch of one).
///
/// A `Run` is a thin, copyable wrapper over config::RunDescription — the same
/// structure the configuration-file front end produces — so a run can come
/// from fluent code (`Run().platform(...)...`) or a file
/// (`Run::from_file("cluster.rumr")`) and execute identically.
class Run {
 public:
  /// Starts from the library defaults: the paper's Table-1 homogeneous
  /// 10-worker platform, algorithm "rumr", no prediction error, 1 repetition.
  Run();

  /// Loads a run-description file (see config/run_description.hpp for the
  /// schema). Throws config::ConfigError on parse or validation problems.
  [[nodiscard]] static Run from_file(const std::string& path);

  // Fluent setters --------------------------------------------------------

  Run& platform(platform::StarPlatform p);
  /// Total divisible workload (units). Must be > 0 at execute() time.
  Run& workload(double units);
  /// Scheduling algorithm name: rumr | rumr-adaptive | umr | umr-eager |
  /// mi-<x> | factoring | wf | gss | tss | fsc.
  Run& algorithm(std::string name);
  /// Prediction-error magnitude the scheduler is told to plan for.
  Run& known_error(double e);
  /// Actual prediction-error level driving the run (truncated-normal model
  /// on both communication and computation, the paper's setting).
  Run& error(double e);
  Run& seed(std::uint64_t s);
  Run& repetitions(std::size_t n);
  /// Worker-availability fault injection (crash/recover, fail-stop, scripts).
  Run& faults(faults::FaultSpec spec);
  /// Link-fault injection: message loss, latency spikes, degradation windows.
  Run& link_faults(faults::LinkFaultSpec spec);
  /// Enables the ACK/timeout/retransmit protocol (optionally with custom
  /// RFC6298 knobs via the options overload).
  Run& retransmit(bool on = true);
  Run& retransmit(sim::SimOptions::RetransmitOptions options);
  /// Partial-work checkpointing period in simulated seconds (0 disables).
  Run& checkpoint_interval(double seconds);
  /// Record a Gantt trace (on the last repetition when running a batch).
  Run& record_trace(bool on = true);
  /// Replaces the full engine option block (error processes, output model,
  /// buffer capacity, fault injection, ...) for anything the narrow setters
  /// do not cover.
  Run& sim_options(sim::SimOptions options);
  /// Self-audit every executed repetition with check::audit_sim_result
  /// (default on; violations raise check::CheckError).
  Run& audit(bool on = true);

  /// The underlying description, for inspection or direct mutation.
  [[nodiscard]] const config::RunDescription& description() const noexcept { return desc_; }
  [[nodiscard]] config::RunDescription& description() noexcept { return desc_; }

  /// Opens this run's workload into a multi-job stream: a JobsRun seeded
  /// with the same platform, per-job scheduler algorithm, known error, and
  /// engine options. Configure arrivals and sharing on the returned builder.
  [[nodiscard]] class JobsRun jobs() const;

  // Execution --------------------------------------------------------------

  /// Executes one repetition (the description's seed) and returns it.
  /// Throws sim::SimError on invalid options or policy misbehavior and
  /// check::CheckError on an audit violation.
  [[nodiscard]] RunResult execute() const;

  /// Executes all repetitions with per-repetition derived seeds (seed, rep)
  /// — the same derivation the CLI and sweep front ends use — tracing only
  /// the last repetition when record_trace is on.
  [[nodiscard]] std::vector<RunResult> execute_all() const;

 private:
  [[nodiscard]] RunResult execute_one(std::uint64_t rep_seed, bool trace) const;

  config::RunDescription desc_;
  bool record_trace_ = false;
  bool audit_ = true;
};

/// Builder for a multi-job open-system run (jobs::run_jobs under the hood).
///
///   rumr::jobs::ServiceResult r = rumr::Run()
///                                     .platform(cluster)
///                                     .algorithm("rumr")
///                                     .jobs()
///                                     .poisson_load(0.7, 100, 300.0)
///                                     .sharing(rumr::jobs::SharingPolicy::kFractional)
///                                     .execute();
///   std::printf("mean slowdown %.2f\n", r.mean_slowdown());
///
/// Like Run, every execute() self-audits — check::audit_service_result
/// verifies the counter ledger, per-job work conservation, share
/// disjointness, and Little's law; a violation raises check::CheckError.
/// Disable with .audit(false).
class JobsRun {
 public:
  /// Starts from the library defaults: the paper's Table-1 homogeneous
  /// 10-worker platform, exclusive sharing, FCFS, an unbounded queue, and a
  /// 100-job Poisson stream.
  JobsRun();

  /// Loads a [jobs] description file (see jobs/jobs_config.hpp for the
  /// schema). Throws config::ConfigError on parse or validation problems.
  [[nodiscard]] static JobsRun from_file(const std::string& path);

  // Fluent setters ---------------------------------------------------------

  JobsRun& platform(platform::StarPlatform p);
  /// Replaces the arrival process wholesale.
  JobsRun& stream(jobs::JobStreamSpec spec);
  /// Poisson arrivals at an explicit rate (jobs/s).
  JobsRun& poisson(double arrival_rate, std::size_t num_jobs, double mean_size);
  /// Poisson arrivals offering `load` (fraction of the platform's aggregate
  /// compute capacity, e.g. 0.7). The rate is derived from the platform at
  /// execute() time, so it tracks later platform() calls.
  JobsRun& poisson_load(double load, std::size_t num_jobs, double mean_size);
  JobsRun& sharing(jobs::SharingPolicy policy);
  JobsRun& partitions(std::size_t count);
  JobsRun& max_degree(std::size_t cap);
  JobsRun& discipline(jobs::QueueDiscipline discipline);
  JobsRun& admission(jobs::AdmissionPolicy policy);
  JobsRun& queue_capacity(std::size_t capacity);
  /// Per-job scheduler run on each worker share (same vocabulary as
  /// Run::algorithm).
  JobsRun& algorithm(std::string name);
  JobsRun& known_error(double e);
  /// Actual prediction-error level inside every service oracle run.
  JobsRun& error(double e);
  JobsRun& seed(std::uint64_t s);
  JobsRun& record_trace(bool on = true);
  /// Replaces the inner-engine option block (fault injection, buffering,
  /// output model, ...).
  JobsRun& sim_options(sim::SimOptions options);
  /// Self-audit with check::audit_service_result (default on).
  JobsRun& audit(bool on = true);

  /// The underlying options, for inspection or direct mutation.
  [[nodiscard]] const jobs::JobsOptions& options() const noexcept { return options_; }
  [[nodiscard]] jobs::JobsOptions& options() noexcept { return options_; }

  // Execution --------------------------------------------------------------

  /// Runs the open system to drain. Throws std::invalid_argument on
  /// non-validating options, sim::SimError from inner engine runs, and
  /// check::CheckError on an audit violation.
  [[nodiscard]] jobs::ServiceResult execute() const;

 private:
  friend class Run;

  platform::StarPlatform platform_;
  jobs::JobsOptions options_{};
  double pending_load_ = 0.0;  ///< poisson_load() fraction; 0 = explicit rate.
  bool audit_ = true;
};

/// Builder for a single best-arm race (race/race.hpp): which policy wins on
/// *this* platform under *this* error regime, certified at level delta.
///
///   rumr::race::RaceResult r = rumr::Race()
///                                  .platform(cluster, "render-farm")
///                                  .error(0.3)
///                                  .delta(0.05)
///                                  .execute();
///   std::printf("winner %s after %zu sims (%.1fx fewer than fixed-rep)\n",
///               r.arms[r.winner].name.c_str(), r.total_samples,
///               r.sims_saved_ratio());
///
/// validate()/execute() parity with the other builders: validate() returns
/// every problem at once, execute() throws std::invalid_argument carrying
/// them. Every execute() self-audits — each simulation through
/// check::audit_sim_result and the finished race through
/// check::audit_race_result (disable with .audit(false)). Results are
/// byte-identical for every threads= setting.
class Race {
 public:
  /// Starts from the paper's Table-1 homogeneous 10-worker platform, the
  /// racing_competitors() line-up, error 0.3, delta 0.05, blocks of 8
  /// repetitions, and a 256-repetition per-arm budget.
  Race();

  // Fluent setters ---------------------------------------------------------

  /// The platform to race on. The label is the platform's seed identity
  /// (sweep::derive_rep_seed hashes it) — keep it stable.
  Race& platform(platform::StarPlatform p, std::string label);
  /// Table 1-style configuration (label = config.label()).
  Race& platform(const sweep::PlatformConfig& config);
  /// Actual prediction-error level driving every repetition.
  Race& error(double e);
  Race& policies(std::vector<sweep::AlgorithmSpec> specs);
  /// Same vocabulary as Run::algorithm; unknown names are reported by
  /// validate() rather than thrown here.
  Race& policies(const std::vector<std::string>& names);
  Race& workload(double units);
  /// Certification level: P(certified winner is not the best arm) <= delta.
  Race& delta(double d);
  /// Repetitions added per active arm per round (>= 2).
  Race& block(std::size_t reps_per_round);
  /// Per-arm repetition budget; exhaustion flags the result instead of
  /// certifying.
  Race& budget(std::size_t max_reps);
  Race& threads(std::size_t n);  ///< 0 = hardware concurrency.
  Race& seed(std::uint64_t s);
  Race& objective(race::Objective o);
  Race& distribution(stats::ErrorDistribution d);
  /// Self-audit every simulation and the finished race (default on).
  Race& audit(bool on = true);

  // Validation and execution -----------------------------------------------

  /// Every problem with the current description; empty = executable.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Runs the race. Throws std::invalid_argument listing every validate()
  /// problem, and check::CheckError on an audit violation.
  [[nodiscard]] race::RaceResult execute() const;

 private:
  [[nodiscard]] race::RaceOptions race_options() const;

  sweep::SweepPlatform platform_;
  std::vector<sweep::AlgorithmSpec> policies_;
  std::vector<std::string> policy_problems_;  ///< Unknown names, reported by validate().
  double error_ = 0.3;
  double workload_ = 1000.0;
  double delta_ = 0.05;
  std::size_t block_ = 8;
  std::size_t budget_ = 256;
  std::size_t threads_ = 0;
  std::uint64_t seed_ = 0x5eed5eed5eedULL;
  race::Objective objective_ = race::Objective::kMakespan;
  stats::ErrorDistribution distribution_ = stats::ErrorDistribution::kTruncatedNormal;
  bool audit_ = true;
};

/// Builder for a full parameter sweep — the single public entry point onto
/// the sharded streaming sweep engine (sweep/runner.hpp).
///
/// Three modes share one builder:
///
///   - **closed-system** (the default): platforms x error axis x policies,
///     every repetition a whole-workload race of the line-up. execute()
///     returns the buffered cells in deterministic (platform, error,
///     algorithm) order.
///   - **open-system**: entered by jobs(base) or loads(axis); platforms x
///     offered-load axis over a jobs::JobsOptions template. execute_jobs()
///     returns the buffered cells in (platform, load) order.
///   - **race**: entered by race(delta); every (platform, error) cell runs a
///     best-arm race over the line-up instead of a fixed repetition count —
///     reps() becomes the per-arm budget and rep_block() the per-round block
///     size. execute_race() returns the raced cells in (platform, error)
///     order.
///
/// Cells stream through on_cell() the moment their site's last shard lands
/// (serialized, order across sites unspecified); pair on_cell() with
/// buffer(false) to keep memory O(1) in the grid size. Results are
/// byte-identical for every threads= setting — the shard structure, per-rep
/// seeds (sweep::derive_rep_seed), and merge order never depend on the
/// thread count.
///
/// validate() returns the full list of problems (empty = executable);
/// execute()/execute_jobs() call it and raise std::invalid_argument carrying
/// every problem at once.
class Sweep {
 public:
  /// Starts empty of platforms (choose the scale explicitly — a sweep is an
  /// expensive operation) with the paper defaults everywhere else: the
  /// section 5.1 competitor line-up, the 0..0.5 error axis, 40 repetitions,
  /// workload 1000, truncated-normal errors, auditing on.
  Sweep();

  // Platform axis ----------------------------------------------------------

  /// Table 1-style lattice: every configuration of the spec.
  Sweep& grid(const sweep::GridSpec& spec);
  Sweep& platforms(std::vector<sweep::PlatformConfig> configs);
  /// Arbitrary labelled platforms (heterogeneous clusters, custom farms).
  /// The label is the platform's seed identity — keep it stable.
  Sweep& platforms(std::vector<sweep::SweepPlatform> list);
  /// Appends one custom platform to the axis.
  Sweep& platform(platform::StarPlatform p, std::string label);

  // Closed-system axis and line-up -----------------------------------------

  Sweep& errors(std::vector<double> axis);
  Sweep& policies(std::vector<sweep::AlgorithmSpec> specs);
  /// Same vocabulary as Run::algorithm: rumr | rumr-adaptive | umr |
  /// umr-eager | mi-<x> | factoring | wf | gss | tss | fsc. Unknown names
  /// are reported by validate() (and execute()) rather than thrown here.
  Sweep& policies(const std::vector<std::string>& names);
  Sweep& workload(double units);
  Sweep& distribution(stats::ErrorDistribution d);
  /// Worker-availability fault injection applied to every repetition.
  Sweep& faults(faults::FaultSpec spec);
  Sweep& fault_tolerance(sim::SimOptions::FaultToleranceOptions tolerance);

  // Open-system mode -------------------------------------------------------

  /// Switches to open-system mode: each cell runs the multi-job engine over
  /// `base` with the arrival rate re-derived for the cell's (platform, load)
  /// and the seed re-derived per repetition. Set base.retain_jobs = false
  /// for large grids so every run streams its jobs in O(1) memory.
  Sweep& jobs(jobs::JobsOptions base);
  /// Offered-load axis (fractions of aggregate compute capacity). Implies
  /// open-system mode.
  Sweep& loads(std::vector<double> axis);

  // Race mode --------------------------------------------------------------

  /// Switches to race mode: each (platform, error) cell runs a best-arm race
  /// (race/race.hpp) over the policy line-up at certification level `delta`
  /// instead of a fixed repetition count. reps() becomes the per-arm budget
  /// (default 256) and rep_block() the per-round block size (default 8,
  /// minimum 2). Conflicts with jobs()/loads().
  Sweep& race(double delta = 0.05);
  /// Race-mode objective (makespan by default).
  Sweep& objective(race::Objective o);
  /// Race-mode cell sink.
  Sweep& on_cell(race::RaceConsumer consumer);

  // Execution knobs --------------------------------------------------------

  /// Repetitions per cell (default: 40 closed-system, 3 open-system, 256
  /// per-arm budget in race mode).
  Sweep& reps(std::size_t n);
  Sweep& threads(std::size_t n);  ///< 0 = hardware concurrency.
  Sweep& seed(std::uint64_t s);
  /// Repetitions per shard (0 = auto: up to 8 shards per site).
  Sweep& rep_block(std::size_t n);
  /// Self-audit every repetition (default on; violations raise
  /// check::CheckError and abort the sweep).
  Sweep& audit(bool on = true);
  /// Closed-system cell sink — called under the engine's emission mutex.
  Sweep& on_cell(sweep::CellConsumer consumer);
  /// Open-system cell sink.
  Sweep& on_cell(sweep::JobsCellConsumer consumer);
  /// Buffer cells into execute()'s return value (default on). Disable for
  /// huge grids — on_cell() then becomes the only output channel.
  Sweep& buffer(bool on);

  // Validation and execution -----------------------------------------------

  /// Every problem with the current description, human-readable, in one
  /// pass: empty axes, missing policies, unknown policy names, engine-level
  /// option problems (SweepOptions/JobsOptions parity), and the cross-field
  /// conflicts (buffer(false) without on_cell, a consumer for the wrong
  /// mode, rep_block exceeding reps, threads exceeding the shard count).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Runs a closed-system sweep. Returns the buffered cells sorted by
  /// (platform, error, algorithm) index — empty with buffer(false). Throws
  /// std::invalid_argument listing every validate() problem.
  [[nodiscard]] std::vector<sweep::SweepCell> execute() const;

  /// Runs an open-system sweep. Returns the buffered cells sorted by
  /// (platform, load) index — empty with buffer(false).
  [[nodiscard]] std::vector<sweep::JobsSweepCell> execute_jobs() const;

  /// Runs a raced sweep (requires race()). Returns the buffered cells sorted
  /// by (platform, error) index — empty with buffer(false).
  [[nodiscard]] std::vector<race::RaceCell> execute_race() const;

 private:
  [[nodiscard]] sweep::SweepOptions closed_options() const;
  [[nodiscard]] sweep::JobsSweepOptions open_options() const;
  [[nodiscard]] race::RaceOptions race_options() const;
  void throw_if_invalid(const char* what) const;

  std::vector<sweep::SweepPlatform> platforms_;
  std::vector<sweep::AlgorithmSpec> policies_;
  std::vector<std::string> policy_problems_;  ///< Unknown names, reported by validate().
  std::vector<double> errors_;
  std::vector<double> loads_;
  double workload_ = 1000.0;
  stats::ErrorDistribution distribution_ = stats::ErrorDistribution::kTruncatedNormal;
  faults::FaultSpec faults_{};
  sim::SimOptions::FaultToleranceOptions fault_tolerance_{};
  jobs::JobsOptions jobs_base_{};
  bool jobs_mode_ = false;
  bool race_mode_ = false;
  double race_delta_ = 0.05;
  race::Objective race_objective_ = race::Objective::kMakespan;
  race::RaceConsumer race_consumer_;
  std::size_t reps_ = 0;  ///< 0 = mode default (40 closed, 3 open, 256 race).
  std::size_t threads_ = 0;
  std::uint64_t seed_ = 0x5eed5eed5eedULL;
  std::size_t rep_block_ = 0;
  bool audit_ = true;
  sweep::CellConsumer cell_consumer_;
  sweep::JobsCellConsumer jobs_consumer_;
  bool buffer_ = true;
};

/// Builder for the what-if scheduling server (serve/server.hpp): concurrent
/// platform+workload+policy queries answered from a content-addressed plan
/// cache, with request-level admission control in the jobs:: vocabulary.
///
///   std::istringstream in(framed_requests);
///   std::ostringstream out;
///   obs::ServeStats stats = rumr::Serve()
///                               .threads(4)
///                               .cache_capacity(1024)
///                               .run(in, out);
///   std::printf("%llu lookups, %llu hits\n",
///               (unsigned long long)stats.plan_cache.lookups,
///               (unsigned long long)stats.plan_cache.hits);
///
/// validate()/run() parity with the other builders: validate() returns every
/// problem at once, construction throws std::invalid_argument carrying them.
/// Every run() self-audits — the finished session's counter ledger is
/// verified by check::audit_serve_stats (admitted + rejected + shed ==
/// received, hits + misses == lookups, solves == misses, ...); a violation
/// raises check::CheckError. Disable with .audit(false). Responses are a
/// pure function of the request bytes: a warm-cache answer is byte-identical
/// to the cold one.
class Serve {
 public:
  /// Starts from the server defaults: auto-width executor, serial batches,
  /// a 4096-entry / 64 MiB / 16-shard plan cache, a 64-deep FCFS queue with
  /// reject-new admission, auditing on.
  Serve();

  /// Loads a [serve] description file (see serve/serve_config.hpp for the
  /// schema). Throws config::ConfigError on parse problems.
  [[nodiscard]] static Serve from_file(const std::string& path);

  // Fluent setters ---------------------------------------------------------

  Serve& threads(std::size_t n);        ///< Requests in service (0 = auto).
  Serve& batch_threads(std::size_t n);  ///< Query fan-out per batch (0 = auto).
  Serve& cache_capacity(std::size_t entries);
  Serve& cache_max_bytes(std::size_t bytes);
  Serve& cache_shards(std::size_t n);
  Serve& queue_capacity(std::size_t n);
  Serve& discipline(jobs::QueueDiscipline discipline);
  Serve& admission(jobs::AdmissionPolicy policy);
  /// Audit every solved plan and the finished session's ledger (default on).
  Serve& audit(bool on = true);

  /// The underlying options, for inspection or direct mutation.
  [[nodiscard]] const serve::ServerOptions& options() const noexcept { return options_; }
  [[nodiscard]] serve::ServerOptions& options() noexcept { return options_; }

  // Validation and execution -----------------------------------------------

  /// Every problem with the current description; empty = servable.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Builds a live server for programmatic submit()/handle() use. Throws
  /// std::invalid_argument listing every validate() problem.
  [[nodiscard]] std::unique_ptr<serve::Server> make_server() const;

  /// Serves one framed session (read requests from `in`, write responses to
  /// `out`) to drain, then returns the audited final statistics. Throws
  /// std::invalid_argument on non-validating options and check::CheckError
  /// on a ledger violation.
  [[nodiscard]] obs::ServeStats run(std::istream& in, std::ostream& out) const;

 private:
  serve::ServerOptions options_{};
};

}  // namespace rumr
