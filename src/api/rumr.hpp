#pragma once

/// \file rumr.hpp
/// Single-include public API facade for the RUMR scheduling library.
///
/// `#include "api/rumr.hpp"` is the supported way to consume the library:
/// it re-exports every public subsystem header (platform description, the
/// UMR/RUMR solvers, the simulation engine's result types, observability,
/// sweeps, reporting, invariant audits) and adds the `rumr::Run` builder —
/// a declarative front end that turns a run description into an executed,
/// audited result without touching engine internals.
///
///   rumr::RunResult r = rumr::Run()
///                           .platform(cluster)
///                           .workload(1000.0)
///                           .algorithm("rumr")
///                           .known_error(0.3)
///                           .error(0.3)
///                           .execute();
///   std::printf("makespan %.2f, uplink %.0f%% busy\n", r.makespan,
///               100.0 * r.metrics.engine.uplink_utilization);
///
/// Every execute() self-audits: the run's invariants (work conservation,
/// resource serialization, the observability identities) are verified by
/// check::audit_sim_result before the result is returned, and a violation
/// raises check::CheckError. Disable with .audit(false) if you are
/// deliberately constructing degenerate runs.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "baselines/factoring.hpp"
#include "baselines/fsc.hpp"
#include "baselines/loop_scheduling.hpp"
#include "baselines/multi_installment.hpp"
#include "baselines/static_sequence.hpp"
#include "check/des_audit.hpp"
#include "check/service_audit.hpp"
#include "check/trace_audit.hpp"
#include "config/run_description.hpp"
#include "core/adaptive_rumr.hpp"
#include "core/rumr.hpp"
#include "core/umr.hpp"
#include "core/umr_policy.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/job_stream.hpp"
#include "jobs/jobs_config.hpp"
#include "obs/metrics.hpp"
#include "platform/platform.hpp"
#include "report/ascii_plot.hpp"
#include "report/csv.hpp"
#include "report/jobs_io.hpp"
#include "report/series.hpp"
#include "report/table.hpp"
#include "sim/master_worker.hpp"
#include "sim/trace.hpp"
#include "sim/trace_json.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "sweep/grid.hpp"
#include "sweep/runner.hpp"
#include "sweep/scheduler_factory.hpp"

namespace rumr {

/// Everything one executed repetition produced.
struct RunResult {
  double makespan = 0.0;
  /// DES kernel, engine, and fault-layer statistics (always collected).
  obs::RunMetrics metrics;
  /// Gantt/trace spans; populated only on a traced repetition.
  sim::Trace trace;
  /// The engine's full result record (per-worker outcomes, fault summary).
  sim::SimResult sim;
};

/// Builder for a single described run (or a small repetition batch of one).
///
/// A `Run` is a thin, copyable wrapper over config::RunDescription — the same
/// structure the configuration-file front end produces — so a run can come
/// from fluent code (`Run().platform(...)...`) or a file
/// (`Run::from_file("cluster.rumr")`) and execute identically.
class Run {
 public:
  /// Starts from the library defaults: the paper's Table-1 homogeneous
  /// 10-worker platform, algorithm "rumr", no prediction error, 1 repetition.
  Run();

  /// Loads a run-description file (see config/run_description.hpp for the
  /// schema). Throws config::ConfigError on parse or validation problems.
  [[nodiscard]] static Run from_file(const std::string& path);

  // Fluent setters --------------------------------------------------------

  Run& platform(platform::StarPlatform p);
  /// Total divisible workload (units). Must be > 0 at execute() time.
  Run& workload(double units);
  /// Scheduling algorithm name: rumr | rumr-adaptive | umr | umr-eager |
  /// mi-<x> | factoring | wf | gss | tss | fsc.
  Run& algorithm(std::string name);
  /// Prediction-error magnitude the scheduler is told to plan for.
  Run& known_error(double e);
  /// Actual prediction-error level driving the run (truncated-normal model
  /// on both communication and computation, the paper's setting).
  Run& error(double e);
  Run& seed(std::uint64_t s);
  Run& repetitions(std::size_t n);
  /// Worker-availability fault injection (crash/recover, fail-stop, scripts).
  Run& faults(faults::FaultSpec spec);
  /// Link-fault injection: message loss, latency spikes, degradation windows.
  Run& link_faults(faults::LinkFaultSpec spec);
  /// Enables the ACK/timeout/retransmit protocol (optionally with custom
  /// RFC6298 knobs via the options overload).
  Run& retransmit(bool on = true);
  Run& retransmit(sim::SimOptions::RetransmitOptions options);
  /// Partial-work checkpointing period in simulated seconds (0 disables).
  Run& checkpoint_interval(double seconds);
  /// Record a Gantt trace (on the last repetition when running a batch).
  Run& record_trace(bool on = true);
  /// Replaces the full engine option block (error processes, output model,
  /// buffer capacity, fault injection, ...) for anything the narrow setters
  /// do not cover.
  Run& sim_options(sim::SimOptions options);
  /// Self-audit every executed repetition with check::audit_sim_result
  /// (default on; violations raise check::CheckError).
  Run& audit(bool on = true);

  /// The underlying description, for inspection or direct mutation.
  [[nodiscard]] const config::RunDescription& description() const noexcept { return desc_; }
  [[nodiscard]] config::RunDescription& description() noexcept { return desc_; }

  /// Opens this run's workload into a multi-job stream: a JobsRun seeded
  /// with the same platform, per-job scheduler algorithm, known error, and
  /// engine options. Configure arrivals and sharing on the returned builder.
  [[nodiscard]] class JobsRun jobs() const;

  // Execution --------------------------------------------------------------

  /// Executes one repetition (the description's seed) and returns it.
  /// Throws sim::SimError on invalid options or policy misbehavior and
  /// check::CheckError on an audit violation.
  [[nodiscard]] RunResult execute() const;

  /// Executes all repetitions with per-repetition derived seeds (seed, rep)
  /// — the same derivation the CLI and sweep front ends use — tracing only
  /// the last repetition when record_trace is on.
  [[nodiscard]] std::vector<RunResult> execute_all() const;

 private:
  [[nodiscard]] RunResult execute_one(std::uint64_t rep_seed, bool trace) const;

  config::RunDescription desc_;
  bool record_trace_ = false;
  bool audit_ = true;
};

/// Builder for a multi-job open-system run (jobs::run_jobs under the hood).
///
///   rumr::jobs::ServiceResult r = rumr::Run()
///                                     .platform(cluster)
///                                     .algorithm("rumr")
///                                     .jobs()
///                                     .poisson_load(0.7, 100, 300.0)
///                                     .sharing(rumr::jobs::SharingPolicy::kFractional)
///                                     .execute();
///   std::printf("mean slowdown %.2f\n", r.mean_slowdown());
///
/// Like Run, every execute() self-audits — check::audit_service_result
/// verifies the counter ledger, per-job work conservation, share
/// disjointness, and Little's law; a violation raises check::CheckError.
/// Disable with .audit(false).
class JobsRun {
 public:
  /// Starts from the library defaults: the paper's Table-1 homogeneous
  /// 10-worker platform, exclusive sharing, FCFS, an unbounded queue, and a
  /// 100-job Poisson stream.
  JobsRun();

  /// Loads a [jobs] description file (see jobs/jobs_config.hpp for the
  /// schema). Throws config::ConfigError on parse or validation problems.
  [[nodiscard]] static JobsRun from_file(const std::string& path);

  // Fluent setters ---------------------------------------------------------

  JobsRun& platform(platform::StarPlatform p);
  /// Replaces the arrival process wholesale.
  JobsRun& stream(jobs::JobStreamSpec spec);
  /// Poisson arrivals at an explicit rate (jobs/s).
  JobsRun& poisson(double arrival_rate, std::size_t num_jobs, double mean_size);
  /// Poisson arrivals offering `load` (fraction of the platform's aggregate
  /// compute capacity, e.g. 0.7). The rate is derived from the platform at
  /// execute() time, so it tracks later platform() calls.
  JobsRun& poisson_load(double load, std::size_t num_jobs, double mean_size);
  JobsRun& sharing(jobs::SharingPolicy policy);
  JobsRun& partitions(std::size_t count);
  JobsRun& max_degree(std::size_t cap);
  JobsRun& discipline(jobs::QueueDiscipline discipline);
  JobsRun& admission(jobs::AdmissionPolicy policy);
  JobsRun& queue_capacity(std::size_t capacity);
  /// Per-job scheduler run on each worker share (same vocabulary as
  /// Run::algorithm).
  JobsRun& algorithm(std::string name);
  JobsRun& known_error(double e);
  /// Actual prediction-error level inside every service oracle run.
  JobsRun& error(double e);
  JobsRun& seed(std::uint64_t s);
  JobsRun& record_trace(bool on = true);
  /// Replaces the inner-engine option block (fault injection, buffering,
  /// output model, ...).
  JobsRun& sim_options(sim::SimOptions options);
  /// Self-audit with check::audit_service_result (default on).
  JobsRun& audit(bool on = true);

  /// The underlying options, for inspection or direct mutation.
  [[nodiscard]] const jobs::JobsOptions& options() const noexcept { return options_; }
  [[nodiscard]] jobs::JobsOptions& options() noexcept { return options_; }

  // Execution --------------------------------------------------------------

  /// Runs the open system to drain. Throws std::invalid_argument on
  /// non-validating options, sim::SimError from inner engine runs, and
  /// check::CheckError on an audit violation.
  [[nodiscard]] jobs::ServiceResult execute() const;

 private:
  friend class Run;

  platform::StarPlatform platform_;
  jobs::JobsOptions options_{};
  double pending_load_ = 0.0;  ///< poisson_load() fraction; 0 = explicit rate.
  bool audit_ = true;
};

}  // namespace rumr
