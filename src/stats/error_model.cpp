#include "stats/error_model.hpp"

#include <cmath>

namespace rumr::stats {

double ErrorModel::sample_ratio(Rng& rng) const {
  switch (distribution_) {
    case ErrorDistribution::kNone:
      return 1.0;
    case ErrorDistribution::kTruncatedNormal: {
      // Truncated normal: resample until the ratio is usable. For error
      // levels up to 0.5 (the paper's range) rejection is vanishingly rare.
      double ratio = rng.normal(1.0, error_);
      int guard = 0;
      while (ratio < kMinRatio && guard++ < 1000) ratio = rng.normal(1.0, error_);
      return ratio < kMinRatio ? kMinRatio : ratio;
    }
    case ErrorDistribution::kUniform: {
      // Half-width sqrt(3)*error gives standard deviation exactly `error`.
      const double half_width = std::sqrt(3.0) * error_;
      const double ratio = rng.uniform(1.0 - half_width, 1.0 + half_width);
      return ratio < kMinRatio ? kMinRatio : ratio;
    }
  }
  return 1.0;
}

double ErrorModel::actual_duration(double predicted, Rng& rng) const {
  if (predicted <= 0.0) return predicted;
  if (distribution_ == ErrorDistribution::kNone) return predicted;
  return predicted * sample_ratio(rng);
}

}  // namespace rumr::stats
