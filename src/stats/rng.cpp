#include "stats/rng.hpp"

#include <cmath>

namespace rumr::stats {

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1) with full double-precision resolution.
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method: unbiased and fast.
  std::uint64_t x = engine_();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = engine_();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::standard_normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * standard_normal();
}

}  // namespace rumr::stats
