#pragma once

/// \file error_model.hpp
/// Performance-prediction error model from RUMR (HPDC 2003), section 4.1.
///
/// The paper models uncertainty as: the ratio between predicted and
/// effective (actual) execution time is normally distributed with mean 1 and
/// standard deviation `error`, truncated to stay positive. We apply the
/// ratio multiplicatively — `actual = predicted * ratio` — i.e. actual task
/// times are normally distributed around the prediction, matching the
/// uncertainty models of Factoring [14] and Hagerup [15] that the paper
/// builds on. (The literal inverse reading, `predicted / ratio`, has a
/// heavy 1/Normal tail under which a single chunk can randomly run 100x
/// long; the truncation "to avoid negative values" only makes sense for the
/// multiplicative form. See DESIGN.md.) The paper also reports running every
/// experiment under a uniformly distributed error model with "essentially
/// similar" results; we implement that variant with a matched standard
/// deviation so `error` means the same thing for both.

#include <cstdint>

#include "stats/rng.hpp"

namespace rumr::stats {

/// Which distribution the prediction-error ratio is drawn from.
enum class ErrorDistribution : std::uint8_t {
  kNone,             ///< Perfect predictions: actual == predicted.
  kTruncatedNormal,  ///< ratio ~ N(1, error), truncated below at kMinRatio.
  kUniform,          ///< ratio ~ U(1 - sqrt(3)*error, 1 + sqrt(3)*error), same stddev.
};

/// Stationary prediction-error model applied independently to every transfer
/// and every computation in the simulator.
class ErrorModel {
 public:
  /// Ratios below this are resampled (normal) or clamped (uniform); the paper
  /// truncates the distribution "to avoid negative values".
  static constexpr double kMinRatio = 0.01;

  constexpr ErrorModel() noexcept = default;

  constexpr ErrorModel(ErrorDistribution distribution, double error) noexcept
      : distribution_(error > 0.0 ? distribution : ErrorDistribution::kNone),
        error_(error > 0.0 ? error : 0.0) {}

  /// Convenience factory for the paper's default model.
  [[nodiscard]] static constexpr ErrorModel truncated_normal(double error) noexcept {
    return {ErrorDistribution::kTruncatedNormal, error};
  }

  /// Convenience factory for the matched-variance uniform variant.
  [[nodiscard]] static constexpr ErrorModel uniform(double error) noexcept {
    return {ErrorDistribution::kUniform, error};
  }

  /// Convenience factory for perfect predictions.
  [[nodiscard]] static constexpr ErrorModel none() noexcept { return {}; }

  [[nodiscard]] constexpr ErrorDistribution distribution() const noexcept { return distribution_; }
  [[nodiscard]] constexpr double error() const noexcept { return error_; }
  [[nodiscard]] constexpr bool is_exact() const noexcept {
    return distribution_ == ErrorDistribution::kNone;
  }

  /// Draws a predicted/actual ratio (>= kMinRatio, mean ~1).
  [[nodiscard]] double sample_ratio(Rng& rng) const;

  /// Perturbs a predicted duration: returns `predicted / ratio`. A predicted
  /// duration of zero stays zero (nothing to perturb).
  [[nodiscard]] double actual_duration(double predicted, Rng& rng) const;

 private:
  ErrorDistribution distribution_ = ErrorDistribution::kNone;
  double error_ = 0.0;
};

}  // namespace rumr::stats
