#pragma once

/// \file summary.hpp
/// Streaming and batch statistics used by the experiment harness.

#include <cstddef>
#include <span>
#include <vector>

namespace rumr::stats {

/// Numerically stable streaming accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel reduction support).
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n - 1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a sample; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n - 1); 0 for fewer than two samples.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Median (average of middle two for even sizes); 0 for an empty span.
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]; 0 for an empty span.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Fraction of entries for which `a[i] < b[i]` (strict win rate of a over b).
/// Requires equal sizes; returns 0 for empty inputs.
[[nodiscard]] double win_fraction(std::span<const double> a, std::span<const double> b) noexcept;

/// Fraction of entries for which `a[i] * (1 + margin) <= b[i]`, i.e. a beats
/// b by at least `margin` (relative). Used for the paper's Table 3 (>= 10%).
[[nodiscard]] double win_fraction_by_margin(std::span<const double> a, std::span<const double> b,
                                            double margin) noexcept;

}  // namespace rumr::stats
