#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace rumr::stats {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.mean();
}

double stddev(std::span<const double> xs) noexcept {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.stddev();
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double win_fraction(std::span<const double> a, std::span<const double> b) noexcept {
  if (a.empty() || a.size() != b.size()) return 0.0;
  std::size_t wins = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(a.size());
}

double win_fraction_by_margin(std::span<const double> a, std::span<const double> b,
                              double margin) noexcept {
  if (a.empty() || a.size() != b.size()) return 0.0;
  std::size_t wins = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] * (1.0 + margin) <= b[i]) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(a.size());
}

}  // namespace rumr::stats
