#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation for the simulator.
///
/// We implement our own engine (xoshiro256**) and our own distributions
/// (polar-method normal) rather than relying on `<random>` distribution
/// classes, whose output is implementation-defined. Every simulation run is
/// therefore bit-reproducible for a given seed across compilers and standard
/// libraries, which the test suite and the sweep harness rely on.

#include <array>
#include <cstdint>

namespace rumr::stats {

/// SplitMix64 step: used to expand a single 64-bit seed into a full engine
/// state. Recommended by the xoshiro authors for seeding.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes an arbitrary list of 64-bit values into a single seed. Used by the
/// sweep harness to derive independent-looking seeds from (config, rep)
/// coordinates so that runs are reproducible and order-independent.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b = 0,
                                               std::uint64_t c = 0, std::uint64_t d = 0) noexcept {
  std::uint64_t s = a;
  std::uint64_t out = splitmix64(s);
  s ^= b * 0x9e3779b97f4a7c15ULL;
  out ^= splitmix64(s);
  s ^= c * 0xbf58476d1ce4e5b9ULL;
  out ^= splitmix64(s);
  s ^= d * 0x94d049bb133111ebULL;
  out ^= splitmix64(s);
  return out;
}

/// xoshiro256** engine (Blackman & Vigna). Satisfies
/// UniformRandomBitGenerator. Period 2^256 - 1.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Constructs the engine from a single 64-bit seed, expanded via SplitMix64.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Random source with the distributions the simulator needs. All methods are
/// deterministic functions of the seed and the call sequence.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept : engine_(seed) {}

  /// Raw 64 uniform bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept { return engine_(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via the Marsaglia polar method (deterministic across
  /// platforms, unlike std::normal_distribution).
  [[nodiscard]] double standard_normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

 private:
  Xoshiro256 engine_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace rumr::stats
