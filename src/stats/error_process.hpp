#pragma once

/// \file error_process.hpp
/// Non-stationary prediction-error processes.
///
/// The paper assumes the prediction-error distribution is stationary and
/// defers "more complex and realistic error distribution models" to future
/// work (sections 4.1 and 6), noting that RUMR "should still be effective"
/// when the distribution drifts slowly because phase 2 uses no predictions.
/// This module implements that future work: an error *process* whose
/// magnitude evolves as operations execute.
///
///   - kStationary:  the paper's model; the magnitude never changes.
///   - kRandomWalk:  the magnitude performs a reflected Gaussian random walk
///                   in [0, walk_max] — slow drift (load building up on a
///                   shared cluster).
///   - kBurst:       two-regime Markov switching between the base magnitude
///                   and burst_factor times it — abrupt interference (a
///                   competing job arriving and leaving).
///
/// An ErrorProcess is the stateful sampler built from a spec; the simulation
/// engine owns one per resource per run, so repetitions stay independent and
/// seeded.

#include "stats/error_model.hpp"
#include "stats/rng.hpp"

namespace rumr::stats {

/// How the error magnitude evolves over successive operations.
enum class ErrorDynamics : std::uint8_t { kStationary, kRandomWalk, kBurst };

/// Declarative description of an error process. Implicitly convertible from
/// ErrorModel so stationary call sites keep their natural spelling.
struct ErrorProcessSpec {
  ErrorModel base{};
  ErrorDynamics dynamics = ErrorDynamics::kStationary;

  /// kRandomWalk: per-operation step stddev and reflection ceiling.
  double walk_step = 0.01;
  double walk_max = 1.0;

  /// kBurst: burst magnitude multiplier and per-operation switch probability.
  double burst_factor = 3.0;
  double switch_probability = 0.02;

  ErrorProcessSpec() = default;
  /* implicit */ ErrorProcessSpec(ErrorModel model) : base(model) {}  // NOLINT
};

/// Stateful sampler for an ErrorProcessSpec.
class ErrorProcess {
 public:
  ErrorProcess() = default;
  explicit ErrorProcess(const ErrorProcessSpec& spec)
      : spec_(spec), level_(spec.base.error()) {}

  /// Perturbs one operation and advances the process state.
  [[nodiscard]] double actual_duration(double predicted, Rng& rng);

  /// The error magnitude currently in force.
  [[nodiscard]] double current_error() const noexcept {
    return in_burst_ ? level_ * spec_.burst_factor : level_;
  }

  /// True when no perturbation can ever occur.
  [[nodiscard]] bool is_exact() const noexcept {
    return spec_.base.is_exact() && spec_.dynamics == ErrorDynamics::kStationary;
  }

  [[nodiscard]] const ErrorProcessSpec& spec() const noexcept { return spec_; }

 private:
  void advance(Rng& rng);

  ErrorProcessSpec spec_{};
  double level_ = 0.0;
  bool in_burst_ = false;
};

}  // namespace rumr::stats
