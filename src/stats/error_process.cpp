#include "stats/error_process.hpp"

#include <algorithm>
#include <cmath>

namespace rumr::stats {

double ErrorProcess::actual_duration(double predicted, Rng& rng) {
  if (is_exact() || predicted <= 0.0) return predicted;
  const ErrorModel model(spec_.base.distribution() == ErrorDistribution::kNone
                             ? ErrorDistribution::kTruncatedNormal
                             : spec_.base.distribution(),
                         current_error());
  const double actual = model.actual_duration(predicted, rng);
  advance(rng);
  return actual;
}

void ErrorProcess::advance(Rng& rng) {
  switch (spec_.dynamics) {
    case ErrorDynamics::kStationary:
      return;
    case ErrorDynamics::kRandomWalk: {
      level_ += rng.normal(0.0, spec_.walk_step);
      // Reflect into [0, walk_max].
      if (level_ < 0.0) level_ = -level_;
      if (level_ > spec_.walk_max) level_ = 2.0 * spec_.walk_max - level_;
      level_ = std::clamp(level_, 0.0, spec_.walk_max);
      return;
    }
    case ErrorDynamics::kBurst: {
      if (rng.uniform01() < spec_.switch_probability) in_burst_ = !in_burst_;
      return;
    }
  }
}

}  // namespace rumr::stats
