#include "jobs/jobs_config.hpp"

#include <algorithm>
#include <cctype>

#include "config/run_description.hpp"

namespace rumr::jobs {

namespace {

std::string lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return text;
}

SizeDistribution parse_size_distribution(const std::string& name) {
  if (name == "fixed") return SizeDistribution::kFixed;
  if (name == "uniform") return SizeDistribution::kUniform;
  if (name == "exponential") return SizeDistribution::kExponential;
  throw config::ConfigError(
      "[jobs] size_distribution must be 'fixed', 'uniform', or 'exponential', got '" + name +
      "'");
}

}  // namespace

SharingPolicy parse_sharing(const std::string& name) {
  if (name == "exclusive") return SharingPolicy::kExclusive;
  if (name == "partitioned") return SharingPolicy::kPartitioned;
  if (name == "fractional") return SharingPolicy::kFractional;
  throw config::ConfigError(
      "sharing must be 'exclusive', 'partitioned', or 'fractional', got '" + name + "'");
}

QueueDiscipline parse_discipline(const std::string& name) {
  if (name == "fcfs") return QueueDiscipline::kFcfs;
  if (name == "sjf") return QueueDiscipline::kSjf;
  if (name == "priority") return QueueDiscipline::kPriority;
  throw config::ConfigError("queue must be 'fcfs', 'sjf', or 'priority', got '" + name + "'");
}

AdmissionPolicy parse_admission(const std::string& name) {
  if (name == "reject") return AdmissionPolicy::kRejectNew;
  if (name == "shed") return AdmissionPolicy::kShedOldest;
  throw config::ConfigError("admission must be 'reject' or 'shed', got '" + name + "'");
}

JobsOptions jobs_options_from_config(const config::ConfigFile& file,
                                     const platform::StarPlatform& platform) {
  JobsOptions options;

  options.stream.kind = ArrivalKind::kPoisson;
  options.stream.max_jobs = file.get_size("jobs", "jobs", options.stream.max_jobs);
  options.stream.mean_size = file.get_double("jobs", "mean_size", options.stream.mean_size);
  options.stream.size_dist =
      parse_size_distribution(lower(file.get_string("jobs", "size_distribution", "fixed")));
  options.stream.size_spread = file.get_double("jobs", "size_spread", 0.0);
  options.stream.max_weight = file.get_double("jobs", "max_weight", 1.0);
  const double load = file.get_double("jobs", "load", 0.0);
  if (load > 0.0) {
    options.stream.arrival_rate =
        JobStreamSpec::rate_for_load(platform, load, options.stream.mean_size);
  } else {
    options.stream.arrival_rate =
        file.get_double("jobs", "arrival_rate", options.stream.arrival_rate);
  }

  options.sharing = parse_sharing(lower(file.get_string("jobs", "sharing", "exclusive")));
  options.partitions = file.get_size("jobs", "partitions", options.partitions);
  options.max_degree = file.get_size("jobs", "max_degree", 0);
  options.discipline = parse_discipline(lower(file.get_string("jobs", "queue", "fcfs")));
  options.admission = parse_admission(lower(file.get_string("jobs", "admission", "reject")));
  options.queue_capacity = file.get_size("jobs", "queue_capacity", options.queue_capacity);
  options.record_trace = file.get_bool("jobs", "record_trace", false);

  options.algorithm = lower(file.get_string("schedule", "algorithm", "rumr"));
  options.known_error = file.get_double("schedule", "error",
                                        file.get_double("simulation", "error", 0.0));
  options.sim = config::sim_options_from_config(file);

  const std::vector<std::string> problems = options.validate(platform.size());
  if (!problems.empty()) {
    std::string joined = "invalid [jobs] description:";
    for (const std::string& p : problems) joined += "\n  - " + p;
    throw config::ConfigError(joined);
  }
  return options;
}

JobsDescription jobs_from_config(const config::ConfigFile& file) {
  JobsDescription description{config::platform_from_config(file)};
  description.options = jobs_options_from_config(file, description.platform);
  return description;
}

}  // namespace rumr::jobs
