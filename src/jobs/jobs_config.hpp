#pragma once

/// \file jobs_config.hpp
/// Configuration-file bridge for the multi-job engine.
///
/// Lives in jobs/ (not config/) so the config library stays free of a jobs
/// dependency; the parsing reuses config::ConfigFile plus the shared
/// [platform]/[simulation]/[faults] readers from config::run_description.
///
/// Schema (all keys optional; [platform] as in run_description.hpp):
///
///   [jobs]
///   load = 0.7              ; offered load fraction; wins over arrival_rate
///   arrival_rate = 0.05     ; jobs per second (used when load is absent)
///   jobs = 100              ; stream length
///   mean_size = 300
///   size_distribution = fixed   ; fixed | uniform | exponential
///   size_spread = 0.2       ; uniform half-width fraction
///   max_weight = 1          ; >1 draws latency-sensitivity weights
///   sharing = exclusive     ; exclusive | partitioned | fractional
///   partitions = 2          ; partitioned only
///   max_degree = 0          ; fractional concurrency cap (0 = workers)
///   queue = fcfs            ; fcfs | sjf | priority
///   admission = reject      ; reject | shed
///   queue_capacity = 16     ; absent = unbounded
///   record_trace = false
///
/// The per-job scheduler comes from [schedule] (algorithm, error) and the
/// inner-engine settings from [simulation] / [faults], exactly as for
/// single-job runs.

#include "config/config_file.hpp"
#include "jobs/job_manager.hpp"
#include "platform/platform.hpp"

namespace rumr::jobs {

/// Everything needed to execute a described open-system run.
struct JobsDescription {
  platform::StarPlatform platform;
  JobsOptions options{};
};

/// Name-to-enum parsers for the admission vocabulary (lower-case names, the
/// inverse of jobs::to_string). Public because the serve daemon's [serve]
/// section reuses the exact same vocabulary for request-level admission.
/// Throw config::ConfigError naming the accepted values on unknown input.
[[nodiscard]] SharingPolicy parse_sharing(const std::string& name);
[[nodiscard]] QueueDiscipline parse_discipline(const std::string& name);
[[nodiscard]] AdmissionPolicy parse_admission(const std::string& name);

/// Parses the [jobs] section (plus [schedule]/[simulation]/[faults]) into
/// engine options for the given platform. Throws config::ConfigError on bad
/// enum values or missing requirements.
[[nodiscard]] JobsOptions jobs_options_from_config(const config::ConfigFile& file,
                                                   const platform::StarPlatform& platform);

/// Parses platform + jobs options from one description file.
[[nodiscard]] JobsDescription jobs_from_config(const config::ConfigFile& file);

}  // namespace rumr::jobs
