#include "jobs/job_stream.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "faults/fault_model.hpp"

namespace rumr::jobs {

double JobStreamSpec::rate_for_load(const platform::StarPlatform& platform, double load,
                                    double mean_size) {
  if (!(load > 0.0)) throw std::invalid_argument("rate_for_load: load must be positive");
  if (!(mean_size > 0.0)) throw std::invalid_argument("rate_for_load: mean_size must be positive");
  return load * platform.total_speed() / mean_size;
}

JobStreamSpec JobStreamSpec::poisson(double arrival_rate, std::size_t max_jobs, double mean_size) {
  JobStreamSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.arrival_rate = arrival_rate;
  spec.max_jobs = max_jobs;
  spec.mean_size = mean_size;
  return spec;
}

JobStreamSpec JobStreamSpec::from_trace(std::vector<Job> trace) {
  JobStreamSpec spec;
  spec.kind = ArrivalKind::kTrace;
  spec.trace = std::move(trace);
  return spec;
}

std::vector<std::string> JobStreamSpec::validate() const {
  std::vector<std::string> problems;
  const auto complain = [&problems](const auto&... parts) {
    std::ostringstream out;
    (out << ... << parts);
    problems.push_back(out.str());
  };

  if (kind == ArrivalKind::kPoisson) {
    if (!(arrival_rate > 0.0)) complain("stream: arrival_rate must be > 0, got ", arrival_rate);
    if (max_jobs == 0) complain("stream: max_jobs must be > 0 for poisson arrivals");
    if (!(mean_size > 0.0)) complain("stream: mean_size must be > 0, got ", mean_size);
    if (!(size_spread >= 0.0) || size_spread >= 1.0) {
      complain("stream: size_spread must lie in [0, 1), got ", size_spread);
    }
    if (!(max_weight >= 1.0)) complain("stream: max_weight must be >= 1, got ", max_weight);
  } else {
    if (trace.empty()) complain("stream: trace arrivals need a non-empty trace");
    des::SimTime prev = 0.0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const Job& job = trace[i];
      if (!(job.arrival >= prev)) {
        complain("stream: trace job ", i, " arrival ", job.arrival,
                 " is before its predecessor (trace must be sorted)");
      }
      if (!(job.size > 0.0)) complain("stream: trace job ", i, " size must be > 0");
      if (!(job.weight >= 1.0)) complain("stream: trace job ", i, " weight must be >= 1");
      prev = std::max(prev, job.arrival);
    }
  }
  return problems;
}

JobStream::JobStream(const JobStreamSpec& spec, std::uint64_t seed)
    : spec_(spec), rng_(stats::mix_seed(seed, 0x1065'57EAULL)) {
  const std::vector<std::string> problems = spec.validate();
  if (!problems.empty()) {
    std::string joined = "invalid job stream:";
    for (const std::string& p : problems) joined += "\n  - " + p;
    throw std::invalid_argument(joined);
  }
}

std::optional<Job> JobStream::next() {
  if (spec_.kind == ArrivalKind::kTrace) {
    if (emitted_ >= spec_.trace.size()) return std::nullopt;
    Job job = spec_.trace[emitted_];
    job.id = emitted_++;
    return job;
  }

  if (emitted_ >= spec_.max_jobs) return std::nullopt;

  // Fixed draw order per job — inter-arrival, size, weight — so a stream is
  // byte-identical on replay no matter how the caller interleaves queries.
  clock_ += faults::sample_exponential(1.0 / spec_.arrival_rate, rng_);
  double size = spec_.mean_size;
  switch (spec_.size_dist) {
    case SizeDistribution::kFixed:
      break;
    case SizeDistribution::kUniform:
      size = spec_.mean_size * rng_.uniform(1.0 - spec_.size_spread, 1.0 + spec_.size_spread);
      break;
    case SizeDistribution::kExponential:
      size = std::max(faults::sample_exponential(spec_.mean_size, rng_),
                      1e-3 * spec_.mean_size);
      break;
  }
  const double weight =
      spec_.max_weight > 1.0 ? rng_.uniform(1.0, spec_.max_weight) : 1.0;

  Job job;
  job.id = emitted_++;
  job.arrival = clock_;
  job.size = size;
  job.weight = weight;
  return job;
}

}  // namespace rumr::jobs
