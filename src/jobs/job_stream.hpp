#pragma once

/// \file job_stream.hpp
/// Open-system workload generators for the multi-job engine.
///
/// The paper simulates exactly one divisible job per run. An open system —
/// the setting of the multi-job divisible-load literature (Gallet, Robert &
/// Vivien) and the batch-vs-fractional sharing comparison (Casanova,
/// Stillwell & Vivien) — needs jobs *arriving over time*: a JobStream emits
/// a deterministic sequence of jobs, each with an arrival time, a divisible
/// workload size, and a latency-sensitivity weight.
///
/// Determinism contract (same as faults::FaultTimeline): a stream is a pure
/// function of (spec, seed). Jobs are generated lazily and sequentially, and
/// every job consumes a fixed number of RNG draws in a fixed order, so two
/// identically-seeded streams replay byte-identically regardless of how the
/// consuming engine interleaves its own events.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "platform/platform.hpp"
#include "stats/rng.hpp"

namespace rumr::jobs {

/// One divisible job in the arrival stream.
struct Job {
  std::size_t id = 0;          ///< Stream position, assigned in arrival order.
  des::SimTime arrival = 0.0;  ///< When the job enters the system.
  double size = 0.0;           ///< Divisible workload, in workload units. > 0.
  double weight = 1.0;         ///< Latency sensitivity (kPriority orders by it). >= 1.
};

/// How arrivals are produced.
enum class ArrivalKind : std::uint8_t {
  kPoisson,  ///< Exponential inter-arrival times at `arrival_rate` jobs/s.
  kTrace,    ///< Explicit job list (tests, replayed production traces).
};

/// How per-job sizes are drawn.
enum class SizeDistribution : std::uint8_t {
  kFixed,        ///< Every job is exactly mean_size.
  kUniform,      ///< Uniform in mean_size * [1 - spread, 1 + spread).
  kExponential,  ///< Exp(mean_size), truncated below at 1e-3 * mean_size.
};

/// Declarative description of a job stream. Validated by JobStream.
struct JobStreamSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;

  /// kPoisson: mean arrival rate, jobs per second. Must be > 0.
  double arrival_rate = 0.01;

  /// Number of jobs the stream emits before ending (the run then drains).
  /// Ignored by kTrace (the trace length governs). Must be > 0 for kPoisson.
  std::size_t max_jobs = 100;

  SizeDistribution size_dist = SizeDistribution::kFixed;
  double mean_size = 1000.0;  ///< Mean workload units per job. > 0.
  /// kUniform half-width as a fraction of mean_size; must lie in [0, 1).
  double size_spread = 0.0;

  /// Weights are drawn uniformly in [1, max_weight); 1 makes every job
  /// equally latency-sensitive (and draws no RNG variation into ordering).
  double max_weight = 1.0;

  /// kTrace: the explicit jobs, in non-decreasing arrival order (ids are
  /// reassigned to stream positions on emission).
  std::vector<Job> trace;

  /// Poisson arrival rate that offers `load` (fraction, e.g. 0.7) of the
  /// platform's aggregate compute capacity: load * sum(S_i) / mean_size.
  [[nodiscard]] static double rate_for_load(const platform::StarPlatform& platform, double load,
                                            double mean_size);

  [[nodiscard]] static JobStreamSpec poisson(double arrival_rate, std::size_t max_jobs,
                                             double mean_size);
  [[nodiscard]] static JobStreamSpec from_trace(std::vector<Job> trace);

  /// Every problem with the spec, human-readable; empty means usable.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Lazy, deterministic job generator.
class JobStream {
 public:
  JobStream() = default;

  /// Throws std::invalid_argument listing every problem when the spec does
  /// not validate.
  JobStream(const JobStreamSpec& spec, std::uint64_t seed);

  /// The next job in arrival order, or nullopt when the stream has ended.
  [[nodiscard]] std::optional<Job> next();

  /// Jobs emitted so far.
  [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }

  /// Total jobs this stream will ever emit.
  [[nodiscard]] std::size_t length() const noexcept {
    return spec_.kind == ArrivalKind::kTrace ? spec_.trace.size() : spec_.max_jobs;
  }

  [[nodiscard]] const JobStreamSpec& spec() const noexcept { return spec_; }

 private:
  JobStreamSpec spec_{};
  stats::Rng rng_{0};
  std::size_t emitted_ = 0;
  des::SimTime clock_ = 0.0;
};

}  // namespace rumr::jobs
