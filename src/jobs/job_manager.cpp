#include "jobs/job_manager.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/bounds.hpp"
#include "check/check.hpp"
#include "config/run_description.hpp"
#include "stats/rng.hpp"

namespace rumr::jobs {

const char* to_string(SharingPolicy policy) noexcept {
  switch (policy) {
    case SharingPolicy::kExclusive: return "exclusive";
    case SharingPolicy::kPartitioned: return "partitioned";
    case SharingPolicy::kFractional: return "fractional";
  }
  return "?";
}

const char* to_string(QueueDiscipline discipline) noexcept {
  switch (discipline) {
    case QueueDiscipline::kFcfs: return "fcfs";
    case QueueDiscipline::kSjf: return "sjf";
    case QueueDiscipline::kPriority: return "priority";
  }
  return "?";
}

const char* to_string(AdmissionPolicy admission) noexcept {
  switch (admission) {
    case AdmissionPolicy::kRejectNew: return "reject";
    case AdmissionPolicy::kShedOldest: return "shed";
  }
  return "?";
}

namespace {

/// Algorithm-name vocabulary check mirroring config::make_policy (kept as a
/// name test so validate() stays side-effect free and cheap).
bool known_algorithm(const std::string& name) {
  for (const char* known :
       {"rumr", "rumr-adaptive", "umr", "umr-eager", "factoring", "wf", "gss", "tss", "fsc"}) {
    if (name == known) return true;
  }
  if (name.rfind("mi-", 0) == 0 && name.size() > 3) {
    return name.find_first_not_of("0123456789", 3) == std::string::npos && name != "mi-0";
  }
  return false;
}

}  // namespace

std::vector<std::string> JobsOptions::validate(std::size_t num_workers) const {
  std::vector<std::string> problems = stream.validate();
  const auto complain = [&problems](const auto&... parts) {
    std::ostringstream out;
    (out << ... << parts);
    problems.push_back(out.str());
  };

  if (!known_algorithm(algorithm)) complain("jobs: unknown algorithm '", algorithm, "'");
  if (!(known_error >= 0.0)) complain("jobs: known_error must be >= 0, got ", known_error);
  if (sharing == SharingPolicy::kPartitioned) {
    if (partitions == 0) complain("jobs: partitions must be >= 1");
    if (num_workers > 0 && partitions > num_workers) {
      complain("jobs: ", partitions, " partitions exceed the platform's ", num_workers,
               " workers");
    }
  }
  for (std::string& problem : sim.validate()) problems.push_back(std::move(problem));
  return problems;
}

namespace {

/// One in-service job: its current worker share, the open segment's oracle
/// prediction, and the pending completion event.
struct Active {
  std::size_t job = 0;           ///< Index into the outcome table (== job id).
  double remaining = 0.0;        ///< Work left at the open segment's start.
  des::SimTime seg_begin = 0.0;
  double seg_duration = 0.0;     ///< Oracle-predicted duration of the open segment.
  std::size_t first = 0;         ///< Share: first global worker index.
  std::size_t count = 0;         ///< Share: contiguous width.
  std::size_t segments = 0;      ///< Segments opened so far (oracle seed lane).
  des::EventId completion = 0;   ///< Pending completion event (0 = none).
  sim::Trace seg_trace;          ///< Inner Gantt of the open segment (iff tracing).
};

/// A fixed worker block serving one job at a time (kExclusive is the
/// single-partition special case).
struct Partition {
  std::size_t first = 0;
  std::size_t count = 0;
  std::optional<Active> active;
};

class JobManager {
 public:
  JobManager(const platform::StarPlatform& platform, const JobsOptions& options)
      : platform_(platform), opts_(options), stream_(options.stream, options.sim.seed) {
    result_.jobs_retained = opts_.retain_jobs;
    result_.stats.response_times = obs::Histogram::exponential(1.0, 2.0, 30);
    result_.stats.slowdowns = obs::Histogram::exponential(1.0, 1.25, 24);
    result_.stats.queue_waits = obs::Histogram::exponential(0.5, 2.0, 30);
    result_.stats.job_sizes = obs::Histogram::exponential(1.0, 2.0, 30);

    if (opts_.sharing == SharingPolicy::kFractional) {
      degree_cap_ = opts_.max_degree > 0 ? std::min(opts_.max_degree, platform_.size())
                                         : platform_.size();
    } else {
      const std::size_t count =
          opts_.sharing == SharingPolicy::kExclusive ? 1 : opts_.partitions;
      // Near-equal contiguous blocks; the first (N mod P) get the extra worker.
      const std::size_t base = platform_.size() / count;
      const std::size_t extra = platform_.size() % count;
      std::size_t pos = 0;
      for (std::size_t i = 0; i < count; ++i) {
        Partition p;
        p.first = pos;
        p.count = base + (i < extra ? 1 : 0);
        pos += p.count;
        partitions_.push_back(std::move(p));
      }
    }
  }

  ServiceResult run() {
    if (auto first = stream_.next()) {
      const Job job = *first;
      sim_.schedule_at(job.arrival, [this, job] { on_arrival(job); });
    }
    sim_.run();

    advance_area();
    result_.horizon = sim_.now();
    result_.manager_events = sim_.events_processed();
    finish_aggregates();
    return std::move(result_);
  }

 private:
  // --- arrival, admission, and the wait queue -----------------------------

  void on_arrival(const Job& job) {
    JobOutcome outcome;
    outcome.id = job.id;
    outcome.arrival = job.arrival;
    outcome.size = job.size;
    outcome.weight = job.weight;
    outcome.departure = job.arrival;
    outcome.best_service =
        analysis::makespan_lower_bounds(platform_, job.size, opts_.sim.uplink_channels)
            .combined();
    RUMR_CHECK(result_.arrived == job.id, "jobs arrive in stream order");
    if (opts_.retain_jobs) {
      result_.jobs.push_back(std::move(outcome));
    } else {
      inflight_.emplace(job.id, std::move(outcome));
    }
    ++result_.arrived;
    result_.stats.job_sizes.add(job.size);
    arrived_work_ += job.size;

    // Admission: the queue bounds *waiting* jobs only; a job that can start
    // immediately (some capacity is free, so the queue is empty) never
    // occupies a queue slot.
    if (has_free_capacity() || queue_.size() < opts_.queue_capacity) {
      admit(job.id);
    } else if (opts_.admission == AdmissionPolicy::kRejectNew || queue_.empty()) {
      // Zero-capacity queues leave shed-oldest nothing to shed: reject.
      job_ref(job.id).rejected = true;
      ++result_.rejected;
      release(job.id);
    } else {
      shed_oldest();
      admit(job.id);
    }
    dispatch_waiting();

    if (auto next = stream_.next()) {
      const Job upcoming = *next;
      sim_.schedule_at(upcoming.arrival, [this, upcoming] { on_arrival(upcoming); });
    }
  }

  void admit(std::size_t id) {
    advance_area();
    ++in_system_;
    ++result_.admitted;
    queue_.push_back(id);
  }

  void shed_oldest() {
    RUMR_CHECK(!queue_.empty(), "shed policy needs a non-empty queue");
    const std::size_t victim = queue_.front();
    queue_.erase(queue_.begin());
    advance_area();
    --in_system_;
    JobOutcome& o = job_ref(victim);
    o.shed = true;
    o.departure = sim_.now();
    o.queue_wait = sim_.now() - o.arrival;
    result_.residence_time += o.departure - o.arrival;
    ++result_.shed;
    release(victim);
  }

  /// Removes and returns the waiting job the discipline ranks first.
  std::size_t pick_next() {
    std::size_t best = 0;
    if (opts_.discipline != QueueDiscipline::kFcfs) {
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        const JobOutcome& a = job_ref(queue_[i]);
        const JobOutcome& b = job_ref(queue_[best]);
        bool better = false;
        if (opts_.discipline == QueueDiscipline::kSjf) {
          better = a.size < b.size || (a.size == b.size && a.id < b.id);
        } else {  // kPriority: weight desc, then size asc, then arrival order.
          better = a.weight > b.weight ||
                   (a.weight == b.weight &&
                    (a.size < b.size || (a.size == b.size && a.id < b.id)));
        }
        if (better) best = i;
      }
    }
    const std::size_t id = queue_[best];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
    return id;
  }

  [[nodiscard]] bool has_free_capacity() const {
    if (opts_.sharing == SharingPolicy::kFractional) return active_.size() < degree_cap_;
    return std::any_of(partitions_.begin(), partitions_.end(),
                       [](const Partition& p) { return !p.active.has_value(); });
  }

  /// Work-conserving dispatch: fill every free slot from the queue.
  void dispatch_waiting() {
    if (opts_.sharing == SharingPolicy::kFractional) {
      bool changed = false;
      while (!queue_.empty() && active_.size() < degree_cap_) {
        const std::size_t id = pick_next();
        Active a;
        a.job = id;
        JobOutcome& o = job_ref(id);
        a.remaining = o.size;
        o.start = sim_.now();
        o.queue_wait = sim_.now() - o.arrival;
        active_.push_back(std::move(a));
        changed = true;
      }
      if (changed) rebalance();
      return;
    }
    for (std::size_t pi = 0; pi < partitions_.size() && !queue_.empty(); ++pi) {
      Partition& p = partitions_[pi];
      if (p.active.has_value()) continue;
      const std::size_t id = pick_next();
      Active a;
      a.job = id;
      a.first = p.first;
      a.count = p.count;
      JobOutcome& o = job_ref(id);
      a.remaining = o.size;
      o.start = sim_.now();
      o.queue_wait = sim_.now() - o.arrival;
      p.active = std::move(a);
      open_segment(*p.active, [this, pi] { on_partition_complete(pi); });
    }
  }

  // --- service segments and the oracle ------------------------------------

  /// Prices `work` units on the share [first, first+count) with the real
  /// single-job engine. Seeded from (run seed, job, segment) so replays are
  /// byte-identical and segments are independent RNG lanes.
  double oracle(Active& a) {
    const platform::StarPlatform& sub = share_platform(a.first, a.count);
    const std::unique_ptr<sim::SchedulerPolicy> policy =
        config::make_policy(opts_.algorithm, sub, a.remaining, opts_.known_error);
    sim::SimOptions options = opts_.sim;
    options.seed = stats::mix_seed(opts_.sim.seed, 0x10B0'0D1EULL, a.job, a.segments);
    options.record_trace = opts_.record_trace;
    const sim::SimResult run = sim::simulate(sub, *policy, options);
    ++result_.oracle_runs;
    result_.oracle_events += run.events;
    if (opts_.record_trace) a.seg_trace = run.trace;
    return run.makespan;
  }

  template <typename Callback>
  void open_segment(Active& a, Callback on_complete) {
    a.seg_begin = sim_.now();
    if (a.remaining <= 1e-12 * job_ref(a.job).size) {
      // A same-instant re-partition closed the previous segment exactly at
      // its predicted end: the job is done; fire completion without another
      // oracle run.
      a.seg_duration = 0.0;
      a.seg_trace.clear();
    } else {
      a.seg_duration = oracle(a);
    }
    ++a.segments;
    a.completion = sim_.schedule_in(a.seg_duration, std::move(on_complete));
  }

  /// Closes the open segment at the current instant; `fraction_done` of the
  /// segment's remaining work completed (1 for an uninterrupted segment).
  void close_segment(Active& a, double fraction_done) {
    const double done = a.remaining * fraction_done;
    const des::SimTime now = sim_.now();
    JobOutcome& o = job_ref(a.job);
    if (now > a.seg_begin || done > 0.0) {
      o.segments.push_back({a.seg_begin, now, a.first, a.count, done});
      result_.share_time += static_cast<double>(a.count) * (now - a.seg_begin);
    }
    if (opts_.record_trace && !a.seg_trace.empty()) {
      // Interrupted segments keep only the part of the inner Gantt that
      // actually ran before the cut.
      const des::SimTime elapsed = now - a.seg_begin;
      sim::Trace clipped;
      for (sim::TraceSpan span : a.seg_trace.spans()) {
        if (span.start >= elapsed) continue;
        span.end = std::min(span.end, elapsed);
        clipped.add(span);
      }
      result_.trace.append_shifted(clipped, a.seg_begin, a.first);
      a.seg_trace.clear();
    }
    o.work_done += done;
    a.remaining -= done;
  }

  void finalize_completed(Active& a) {
    close_segment(a, 1.0);
    JobOutcome& o = job_ref(a.job);
    o.completed = true;
    o.departure = sim_.now();
    o.response = o.departure - o.arrival;
    o.service_time = o.departure - o.start;
    o.slowdown = o.best_service > 0.0 ? o.response / o.best_service : 0.0;
    ++result_.completed;
    result_.total_work += o.size;
    result_.residence_time += o.response;
    result_.stats.response_times.add(o.response);
    result_.stats.slowdowns.add(o.slowdown);
    result_.stats.queue_waits.add(o.queue_wait);
    advance_area();
    --in_system_;
    release(a.job);
  }

  void on_partition_complete(std::size_t pi) {
    Partition& p = partitions_[pi];
    RUMR_CHECK(p.active.has_value(), "completion fired on an idle partition");
    finalize_completed(*p.active);
    p.active.reset();
    dispatch_waiting();
  }

  // --- fractional sharing -------------------------------------------------

  void on_fractional_complete(std::size_t job_id) {
    const auto it = std::find_if(active_.begin(), active_.end(),
                                 [job_id](const Active& a) { return a.job == job_id; });
    RUMR_CHECK(it != active_.end(), "completion fired for a job no longer in service");
    finalize_completed(*it);
    active_.erase(it);
    dispatch_waiting();
    // With an empty queue dispatch_waiting() admitted nobody, so the
    // survivors still run on their old (narrower) shares; re-divide. When it
    // did admit, the shares already match and this pass is a cheap no-op.
    rebalance();
  }

  /// Re-divides the workers evenly over the in-service jobs (insertion
  /// order, contiguous blocks) and re-prices every job whose share moved.
  void rebalance() {
    if (active_.empty()) return;
    const std::size_t n = platform_.size();
    const std::size_t k = active_.size();
    const std::size_t base = n / k;
    const std::size_t extra = n % k;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < k; ++i) {
      Active& a = active_[i];
      const std::size_t count = base + (i < extra ? 1 : 0);
      const std::size_t first = pos;
      pos += count;
      if (a.completion != 0 && a.first == first && a.count == count) continue;
      if (a.completion != 0) {
        // Interrupt: fluid progress within the segment.
        sim_.cancel(a.completion);
        a.completion = 0;
        const double fraction =
            a.seg_duration > 0.0
                ? std::min((sim_.now() - a.seg_begin) / a.seg_duration, 1.0)
                : 1.0;
        close_segment(a, fraction);
      }
      a.first = first;
      a.count = count;
      const std::size_t job_id = a.job;
      open_segment(a, [this, job_id] { on_fractional_complete(job_id); });
    }
  }

  // --- bookkeeping --------------------------------------------------------

  /// Extends the exact integral of N(t) up to the current instant. Must run
  /// before every in_system_ transition.
  void advance_area() {
    const des::SimTime now = sim_.now();
    result_.area_jobs_in_system += static_cast<double>(in_system_) * (now - area_clock_);
    area_clock_ = now;
  }

  const platform::StarPlatform& share_platform(std::size_t first, std::size_t count) {
    if (count == platform_.size()) return platform_;
    const auto key = std::make_pair(first, count);
    auto it = share_cache_.find(key);
    if (it == share_cache_.end()) {
      std::vector<std::size_t> indices(count);
      std::iota(indices.begin(), indices.end(), first);
      it = share_cache_.emplace(key, platform_.subset(indices)).first;
    }
    return it->second;
  }

  /// The live record for job `id`: the outcome table in retain mode, the
  /// in-flight map in streaming mode. Valid from arrival until release().
  JobOutcome& job_ref(std::size_t id) {
    if (opts_.retain_jobs) return result_.jobs[id];
    const auto it = inflight_.find(id);
    RUMR_CHECK(it != inflight_.end(), "streaming mode touched a released job");
    return it->second;
  }

  /// Terminal departure in streaming mode: the per-job record has been folded
  /// into the aggregates, drop it so memory tracks jobs *in flight* only.
  void release(std::size_t id) {
    if (!opts_.retain_jobs) inflight_.erase(id);
  }

  void finish_aggregates() {
    result_.arrived_work = arrived_work_;
    result_.stats.arrived = result_.arrived;
    result_.stats.admitted = result_.admitted;
    result_.stats.rejected = result_.rejected;
    result_.stats.shed = result_.shed;
    result_.stats.completed = result_.completed;
    const double horizon = result_.horizon;
    if (horizon > 0.0) {
      const double capacity = platform_.total_speed() * horizon;
      result_.utilization = capacity > 0.0 ? result_.total_work / capacity : 0.0;
      result_.offered_load = capacity > 0.0 ? arrived_work_ / capacity : 0.0;
      result_.share_utilization =
          result_.share_time / (static_cast<double>(platform_.size()) * horizon);
    }
  }

  const platform::StarPlatform& platform_;
  JobsOptions opts_;
  des::Simulator sim_;
  JobStream stream_;
  ServiceResult result_;

  std::vector<std::size_t> queue_;      ///< Waiting job ids, in enqueue order.
  std::vector<Partition> partitions_;   ///< kExclusive / kPartitioned servers.
  std::vector<Active> active_;          ///< kFractional in-service set.
  std::size_t degree_cap_ = 0;          ///< kFractional concurrency cap.

  std::size_t in_system_ = 0;           ///< Admitted, not yet departed.
  des::SimTime area_clock_ = 0.0;
  double arrived_work_ = 0.0;
  /// Streaming mode (retain_jobs == false): the outcome records of jobs
  /// currently in flight, dropped on terminal departure. (std::map, not
  /// unordered — iteration order never matters here, and the determinism
  /// lint bans unordered containers in src/ outright.)
  std::map<std::size_t, JobOutcome> inflight_;
  std::map<std::pair<std::size_t, std::size_t>, platform::StarPlatform> share_cache_;
};

}  // namespace

ServiceResult run_jobs(const platform::StarPlatform& platform, const JobsOptions& options) {
  const std::vector<std::string> problems = options.validate(platform.size());
  if (!problems.empty()) {
    std::string joined = "invalid jobs options:";
    for (const std::string& p : problems) joined += "\n  - " + p;
    throw std::invalid_argument(joined);
  }
  JobManager manager(platform, options);
  return manager.run();
}

}  // namespace rumr::jobs
