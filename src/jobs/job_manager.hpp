#pragma once

/// \file job_manager.hpp
/// Multi-job open-system engine: admission, queueing, and platform sharing
/// on top of the single-job master-worker engine.
///
/// The single-job engine (sim/master_worker.hpp) answers "how long does one
/// divisible job take on this star platform under this scheduler?". This
/// module opens the workload: jobs arrive over time (jobs::JobStream), are
/// admitted or rejected at a bounded queue, wait under a queueing
/// discipline, and are served on a *share* of the platform's workers under
/// one of three sharing policies:
///
///   kExclusive    one job at a time owns every worker (batch / serial).
///   kPartitioned  the workers are split into fixed partitions at start-up;
///                 each partition serves one job at a time (static
///                 space-sharing, the "virtual cluster" model).
///   kFractional   the workers are re-divided evenly among all in-service
///                 jobs on every arrival and completion (dynamic fractional
///                 resource scheduling, after Casanova, Stillwell & Vivien).
///
/// Each service (and each re-partitioned service segment) is priced by the
/// real single-job engine: the manager instantiates the configured scheduler
/// policy (RUMR/UMR/Factoring/...) on the job's worker share and runs
/// sim::simulate() — prediction error, buffering, and fault injection
/// included — as a service-time oracle. Within a segment, progress is fluid:
/// a job interrupted after fraction f of its predicted segment duration has
/// completed fraction f of the segment's work. This keeps the open-system
/// timeline exact and work-conserving while every service time comes from
/// the paper's full execution mechanics.
///
/// Determinism: the job-level timeline runs on des::Simulator (FIFO
/// tie-breaks), the stream is a pure function of (spec, seed), and every
/// oracle run derives its seed from (seed, job, segment) — so identically-
/// seeded runs replay byte-identically (tools/determinism_check enforces
/// this), and check::audit_service_result verifies the service identities on
/// every audited run.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "jobs/job_stream.hpp"
#include "obs/metrics.hpp"
#include "platform/platform.hpp"
#include "sim/master_worker.hpp"
#include "sim/trace.hpp"

namespace rumr::jobs {

/// How concurrent jobs share the star platform's workers.
enum class SharingPolicy : std::uint8_t { kExclusive, kPartitioned, kFractional };

/// Order in which waiting jobs are picked when capacity frees up.
enum class QueueDiscipline : std::uint8_t {
  kFcfs,      ///< First-come, first-served (arrival order).
  kSjf,       ///< Shortest job first (smallest size; FCFS tie-break).
  kPriority,  ///< Highest latency-sensitivity weight first; smaller size,
              ///< then arrival order, break ties.
};

/// What happens when a job arrives and the wait queue is full.
enum class AdmissionPolicy : std::uint8_t {
  kRejectNew,   ///< The arriving job is rejected (classic bounded queue).
  kShedOldest,  ///< The longest-waiting queued job is shed to make room.
};

[[nodiscard]] const char* to_string(SharingPolicy policy) noexcept;
[[nodiscard]] const char* to_string(QueueDiscipline discipline) noexcept;
[[nodiscard]] const char* to_string(AdmissionPolicy admission) noexcept;

/// Full configuration of one open-system run.
struct JobsOptions {
  JobStreamSpec stream{};                                  ///< The arrival process.
  SharingPolicy sharing = SharingPolicy::kExclusive;
  QueueDiscipline discipline = QueueDiscipline::kFcfs;
  AdmissionPolicy admission = AdmissionPolicy::kRejectNew;

  /// Maximum number of *waiting* jobs (in-service jobs do not count).
  /// SIZE_MAX = unbounded (nothing is ever rejected or shed).
  std::size_t queue_capacity = SIZE_MAX;

  /// kPartitioned: number of fixed worker partitions (near-equal contiguous
  /// blocks). Must be >= 1 and <= the platform's worker count.
  std::size_t partitions = 2;

  /// kFractional: cap on concurrently served jobs. 0 = one job per worker
  /// at most (every in-service job always holds >= 1 worker).
  std::size_t max_degree = 0;

  /// Per-job scheduler run on the job's worker share: rumr | rumr-adaptive |
  /// umr | umr-eager | mi-<x> | factoring | wf | gss | tss | fsc.
  std::string algorithm = "rumr";
  double known_error = 0.0;  ///< Error magnitude the scheduler is told.

  /// Inner-engine options: error processes, buffering, output model, fault
  /// injection. `sim.seed` also seeds the job stream; per-segment oracle
  /// seeds are derived from (sim.seed, job, segment).
  sim::SimOptions sim{};

  /// Merge every job's inner-engine Gantt spans (shifted to the job-level
  /// clock and to the share's global worker indices) into
  /// ServiceResult::trace. Costs memory; off by default.
  bool record_trace = false;

  /// Keep every per-job JobOutcome on ServiceResult::jobs (the default).
  /// Disable for large open-system runs (the sharded sweep engine does):
  /// outcomes then live only while their job is in flight and are folded
  /// into the aggregate counters/histograms on departure, so peak memory is
  /// O(jobs concurrently in the system) instead of O(total jobs).
  /// ServiceResult::jobs stays empty and jobs_retained records the mode;
  /// the aggregate identities (Little's law via residence_time, the work
  /// ledger via arrived_work) remain fully audited either way.
  bool retain_jobs = true;

  /// Every problem with the options, human-readable; empty means usable.
  /// `num_workers` enables the platform-dependent checks (partitions vs
  /// worker count); pass 0 to skip them.
  [[nodiscard]] std::vector<std::string> validate(std::size_t num_workers = 0) const;
};

/// One contiguous interval during which a job held a fixed worker share.
struct ServiceSegment {
  des::SimTime begin = 0.0;
  des::SimTime end = 0.0;
  std::size_t first_worker = 0;  ///< Global index of the share's first worker.
  std::size_t num_workers = 0;   ///< Share width (contiguous block).
  double work = 0.0;             ///< Workload units completed in this segment.
};

/// Everything the system did with one job.
struct JobOutcome {
  std::size_t id = 0;
  des::SimTime arrival = 0.0;
  double size = 0.0;
  double weight = 1.0;

  bool rejected = false;   ///< Turned away on arrival (never entered the system).
  bool shed = false;       ///< Admitted, then dropped from the queue unserved.
  bool completed = false;  ///< Ran to completion.

  des::SimTime start = 0.0;      ///< First service instant (0 if never served).
  des::SimTime departure = 0.0;  ///< Completion, shed instant, or arrival (rejected).

  double queue_wait = 0.0;    ///< start - arrival (shed: departure - arrival).
  double service_time = 0.0;  ///< departure - start (completed jobs).
  double response = 0.0;      ///< departure - arrival (completed jobs).
  /// Analytic lower bound on this job's makespan alone on the *full*
  /// platform (analysis::makespan_lower_bounds) — the slowdown denominator.
  double best_service = 0.0;
  double slowdown = 0.0;  ///< response / best_service (completed jobs).

  double work_done = 0.0;  ///< Sum of segment work (== size when completed).
  std::vector<ServiceSegment> segments;
};

/// Result of one open-system run.
struct ServiceResult {
  std::vector<JobOutcome> jobs;  ///< Every arrived job, in arrival order.

  std::size_t arrived = 0;
  std::size_t admitted = 0;  ///< arrived - rejected.
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t completed = 0;  ///< == admitted - shed once the run drains.

  /// End of the run: the job-level clock after the last event (last
  /// departure, or last arrival when everything was rejected).
  des::SimTime horizon = 0.0;

  /// Exact integral of N(t) (admitted jobs in system) over [0, horizon].
  /// Little's-law identity: equals the sum of (departure - arrival) over
  /// admitted jobs — audited by check::audit_service_result.
  double area_jobs_in_system = 0.0;

  /// Sum of (departure - arrival) over admitted jobs, accumulated
  /// incrementally at each departure — the other side of the Little's-law
  /// identity, carried on the result so streaming runs (jobs_retained ==
  /// false, no per-job records) still audit it.
  double residence_time = 0.0;

  /// Workload units across *arrived* jobs (rejected ones included) — the
  /// offered-load numerator, carried for the same reason.
  double arrived_work = 0.0;

  /// False when options.retain_jobs was false: `jobs` is empty by design and
  /// auditors skip the per-job cross-checks (aggregate identities still hold).
  bool jobs_retained = true;

  double total_work = 0.0;  ///< Workload units completed across all jobs.
  /// Worker-seconds held by service segments (share width x duration).
  double share_time = 0.0;
  /// total_work / (platform aggregate speed x horizon): fraction of the
  /// platform's compute capacity converted into completed work.
  double utilization = 0.0;
  /// share_time / (workers x horizon): fraction of worker-time allocated to
  /// jobs. <= 1 by partition disjointness.
  double share_utilization = 0.0;
  /// Workload units arrived per second of horizon, over aggregate speed —
  /// the realized offered load.
  double offered_load = 0.0;

  /// Service-metric counters and distributions (obs-layer record).
  obs::JobsStats stats;

  std::size_t manager_events = 0;  ///< Job-level DES events executed.
  std::size_t oracle_runs = 0;     ///< Inner single-job engine invocations.
  std::size_t oracle_events = 0;   ///< DES events inside those runs.

  /// Merged per-job Gantt spans (populated iff options.record_trace).
  sim::Trace trace;

  [[nodiscard]] double mean_response() const noexcept { return stats.response_times.mean(); }
  [[nodiscard]] double mean_slowdown() const noexcept { return stats.slowdowns.mean(); }
  [[nodiscard]] double mean_queue_wait() const noexcept { return stats.queue_waits.mean(); }
};

/// Runs one open-system timeline to drain: every streamed job arrives, is
/// admitted/rejected, waits, is served on its share, and departs.
///
/// Throws std::invalid_argument when the options do not validate and
/// propagates sim::SimError from inner engine runs (e.g. a fault spec that
/// kills every worker of a share permanently).
[[nodiscard]] ServiceResult run_jobs(const platform::StarPlatform& platform,
                                     const JobsOptions& options);

}  // namespace rumr::jobs
