#pragma once

/// \file metrics.hpp
/// Observability primitives and the per-run metrics record.
///
/// Every simulated run produces a RunMetrics: DES kernel statistics (event
/// throughput, queue depth), engine statistics (where uplink and worker time
/// went), and fault-layer statistics. Collection is always on — it adds zero
/// RNG draws and O(1) work per event, so instrumented runs are byte-identical
/// to uninstrumented ones (the determinism harness enforces this).
///
/// The primitives are deliberately minimal:
///
///   Counter    monotonically increasing event count
///   Gauge      last-value-wins sample with a high-water mark
///   Histogram  fixed-bucket distribution (bucket edges chosen up front, so
///              recording is O(#buckets) worst case and allocation-free)
///
/// The identities the numbers must satisfy (uplink busy + idle == makespan;
/// per-worker compute + aborted + idle + down == makespan) are audited by
/// check::audit_sim_result, so a bookkeeping bug here is caught, not trusted.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rumr::obs {

/// Monotonically increasing count of occurrences.
class Counter {
 public:
  void increment(std::uint64_t by = 1) noexcept { value_ += by; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

  /// Folds another counter in. Integer addition — exactly associative and
  /// commutative, so sharded aggregation (obs/accumulators.hpp) can reduce
  /// counters in any order.
  void merge(const Counter& other) noexcept { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-observed value plus the largest value ever observed.
class Gauge {
 public:
  void set(double v) noexcept {
    value_ = v;
    if (v > high_water_) high_water_ = v;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double high_water() const noexcept { return high_water_; }

 private:
  double value_ = 0.0;
  double high_water_ = 0.0;
};

/// Fixed-bucket histogram. Bucket i counts samples in (edge[i-1], edge[i]];
/// samples above the last edge land in the overflow bucket. Edges are fixed
/// at construction, so add() never allocates.
class Histogram {
 public:
  Histogram() = default;

  /// Buckets with the given ascending upper edges (plus an overflow bucket).
  explicit Histogram(std::vector<double> upper_edges);

  /// `count` buckets whose upper edges grow geometrically from `first_edge`
  /// by `factor` (e.g. 1, 2, 4, 8, ... for factor 2).
  [[nodiscard]] static Histogram exponential(double first_edge, double factor,
                                             std::size_t count);

  void add(double sample) noexcept;

  /// Folds another histogram with identical upper edges into this one
  /// (throws std::invalid_argument on an edge mismatch). Bucket counts and
  /// totals are integers, so the merge is exactly associative/commutative;
  /// sum is FP-exact up to addition order, which is why the sharded sweep
  /// engine merges shards in a fixed order. A default-constructed (edgeless,
  /// empty) histogram adopts the other side's edges, so zero-value partials
  /// merge cleanly.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return total_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return total_ > 0 ? max_ : 0.0; }

  /// Upper edges (size == bucket_counts().size() - 1; the final bucket is
  /// the overflow bucket, unbounded above).
  [[nodiscard]] const std::vector<double>& upper_edges() const noexcept { return edges_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// DES kernel statistics for one run.
struct DesStats {
  std::size_t events_scheduled = 0;
  std::size_t events_executed = 0;
  std::size_t events_cancelled = 0;
  /// Largest number of simultaneously pending (scheduled, not yet executed or
  /// cancelled) events.
  std::size_t queue_depth_high_water = 0;
  /// Wall-clock seconds the event loop ran (real time, not simulated).
  double wall_seconds = 0.0;
  /// events_executed / wall_seconds (0 when the run was too fast to time).
  double events_per_second = 0.0;
};

/// Where one worker's time went, partitioned over [0, makespan]:
/// compute + aborted + idle + down == makespan (audited identity).
struct WorkerSpans {
  double compute_time = 0.0;  ///< Completed computations.
  double aborted_time = 0.0;  ///< Computations cut short (failure or fence).
  double idle_time = 0.0;     ///< Up, reachable, not computing.
  double down_time = 0.0;     ///< Ground-truth outage intervals.
  double receive_time = 0.0;  ///< Receiving chunks (overlaps compute; not in the identity).
  std::size_t dispatches = 0;   ///< Chunks sent toward this worker.
  std::size_t completions = 0;  ///< Chunks it reported complete.
};

/// Master/engine statistics for one run.
struct EngineStats {
  /// Occupancy accounting for the master uplink: busy counts time when at
  /// least one channel carries a serialized transfer or holds a blocked
  /// (rendezvous) send; idle is the complement. busy + idle == makespan.
  double uplink_busy_time = 0.0;
  double uplink_idle_time = 0.0;
  /// uplink_busy_time / makespan (0 for a zero-length run).
  double uplink_utilization = 0.0;
  /// Sum of serialized transfer durations (the classic per-transfer total;
  /// can exceed makespan when uplink_channels > 1).
  double uplink_transfer_time = 0.0;
  double downlink_busy_time = 0.0;
  /// Time a blocked rendezvous send held an uplink channel while its target
  /// worker had no free buffer slot (head-of-line blocking).
  double hol_blocking_time = 0.0;
  std::size_t dispatches = 0;
  std::size_t completions = 0;
  std::size_t redispatches = 0;
  double work_dispatched = 0.0;
  double work_redispatched = 0.0;
  /// Mean over workers of compute_time / makespan.
  double mean_worker_utilization = 0.0;
  std::vector<WorkerSpans> workers;
  Histogram chunk_sizes;        ///< Dispatched chunk sizes (workload units).
  Histogram compute_durations;  ///< Actual (perturbed) computation durations.
  /// Completion-watchdog windows armed (seconds of allowed lateness). Empty
  /// unless a fault layer is enabled.
  Histogram timeout_windows;
  /// Retransmission timeouts armed by the ACK protocol (RFC6298 RTO values,
  /// seconds). Empty unless retransmit is enabled.
  Histogram rto_values;
};

/// Fault-layer statistics for one run (all zero when faults are disabled).
struct FaultStats {
  std::size_t failures = 0;          ///< Ground-truth down transitions.
  std::size_t recoveries = 0;        ///< Ground-truth up transitions.
  std::size_t fencings = 0;          ///< Completion-timeouts fired.
  std::size_t false_suspicions = 0;  ///< Fencings of a worker that was actually up.
  std::size_t backoff_retries = 0;   ///< Rejoin attempts scheduled after a fence.
  std::size_t rejoins = 0;           ///< Fenced workers re-admitted.
  std::size_t chunks_lost = 0;
  std::size_t chunks_redispatched = 0;

  // Link-fault / retransmit-protocol counters (zero when those layers are off).
  std::size_t messages_lost = 0;   ///< Payloads and ACKs dropped in the network.
  std::size_t latency_spikes = 0;  ///< Messages delayed by a latency spike.
  std::size_t degraded_sends = 0;  ///< Payload sends inside a degradation window.
  std::size_t retransmits = 0;     ///< Chunk payloads re-sent by the protocol.
  double work_retransmitted = 0.0; ///< Workload units in those re-sends.
  std::size_t duplicates_suppressed = 0;  ///< Duplicate deliveries dropped by lease id.

  // Partial-work checkpointing counters (zero when checkpoint.interval == 0).
  std::size_t checkpoints_banked = 0;  ///< Aborted computations that banked progress.
  double work_banked = 0.0;            ///< Workload units banked (never recomputed).
};

/// The full per-run metrics record carried on sim::SimResult.
struct RunMetrics {
  double makespan = 0.0;
  DesStats des;
  EngineStats engine;
  FaultStats faults;
};

/// Service-level statistics for one open-system (multi-job) run, carried on
/// jobs::ServiceResult. Counters cover the admission ledger; the histograms
/// hold the per-job service metrics the sharing-policy comparisons plot.
/// check::audit_service_result cross-checks every total against the per-job
/// records.
struct JobsStats {
  std::size_t arrived = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t completed = 0;
  Histogram response_times;  ///< departure - arrival, completed jobs.
  Histogram slowdowns;       ///< response / best-alone service bound.
  Histogram queue_waits;     ///< service start - arrival, completed jobs.
  Histogram job_sizes;       ///< Workload units of every arrived job.
};

/// Content-addressed cache accounting (the serve plan cache). Counters obey
/// the identities check::audit_serve_stats enforces:
///
///   hits + misses == lookups
///   misses == insertions + collisions + failed_solves
///   entries + evictions == insertions
///
/// A *hit* is a lookup that found the key resident or in flight (a waiter on
/// an in-flight solve is a hit: the solve runs exactly once per key). A
/// *miss* runs the solver exactly once and installs exactly one entry —
/// unless the 64-bit FNV-1a fingerprint collided with a different canonical
/// key (solved uncached, counted in `collisions`) or the solver threw
/// (nothing installed, counted in `failed_solves`). A zero-capacity cache
/// still inserts and immediately evicts, so the identities hold in
/// pass-through mode too.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t collisions = 0;    ///< Fingerprint collisions (solved uncached).
  std::uint64_t failed_solves = 0; ///< Solver threw; no entry was installed.
  std::uint64_t entries = 0;       ///< Currently resident entries.
  std::uint64_t bytes_cached = 0;  ///< Currently resident payload + key bytes.

  /// Folds another shard's counters in (exact integer addition).
  void merge(const CacheStats& other) noexcept;
};

/// Admission and execution ledger for one serve session (the what-if
/// server). Request-level counters follow the jobs-layer vocabulary: every
/// received request ends in exactly one of {admitted, rejected, shed} —
/// audited as admitted + rejected + shed == received — and completed counts
/// admitted requests whose response was produced (== admitted once the
/// session drains). Query-level counters split each batch into its queries.
struct ServeStats {
  // Request (frame) admission ledger.
  std::uint64_t received = 0;
  std::uint64_t admitted = 0;   ///< Dispatched to a worker.
  std::uint64_t rejected = 0;   ///< Turned away at a full queue (reject-new).
  std::uint64_t shed = 0;       ///< Dropped from the queue unserved (shed-oldest).
  std::uint64_t completed = 0;  ///< Responses produced for admitted requests.
  std::uint64_t queue_depth_high_water = 0;  ///< Largest pending-queue size.

  // Query execution ledger (a batch request carries many queries).
  std::uint64_t queries = 0;        ///< Queries received inside admitted requests.
  std::uint64_t query_errors = 0;   ///< Queries rejected before solving (bad input).
  std::uint64_t solves = 0;         ///< Cold solves actually executed.
  std::uint64_t protocol_errors = 0;  ///< Requests whose payload failed to parse.

  /// Plan-cache accounting. queries - query_errors == plan_cache.lookups
  /// (every well-formed query is exactly one cache lookup).
  CacheStats plan_cache;
};

/// Serializes a RunMetrics as a single JSON object (stable key order, full
/// precision, non-finite values as null — valid JSON always).
[[nodiscard]] std::string to_json(const RunMetrics& metrics);

/// Serializes a ServeStats the same way.
[[nodiscard]] std::string to_json(const ServeStats& stats);

/// Serializes a JobsStats the same way.
[[nodiscard]] std::string to_json(const JobsStats& stats);

/// Writes a RunMetrics as long-form `metric,value` CSV rows with a header.
/// Per-worker metrics are emitted as `worker<i>.<metric>`.
void write_csv(std::ostream& out, const RunMetrics& metrics);

/// Same, to a string.
[[nodiscard]] std::string to_csv(const RunMetrics& metrics);

}  // namespace rumr::obs
