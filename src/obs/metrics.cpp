#include "obs/metrics.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rumr::obs {

Histogram::Histogram(std::vector<double> upper_edges) : edges_(std::move(upper_edges)) {
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    if (!(edges_[i] > edges_[i - 1])) {
      throw std::invalid_argument("Histogram edges must be strictly ascending");
    }
  }
  counts_.assign(edges_.size() + 1, 0);
}

Histogram Histogram::exponential(double first_edge, double factor, std::size_t count) {
  if (!(first_edge > 0.0) || !(factor > 1.0)) {
    throw std::invalid_argument("Histogram::exponential needs first_edge > 0 and factor > 1");
  }
  std::vector<double> edges;
  edges.reserve(count);
  double edge = first_edge;
  for (std::size_t i = 0; i < count; ++i) {
    edges.push_back(edge);
    edge *= factor;
  }
  return Histogram(std::move(edges));
}

void Histogram::add(double sample) noexcept {
  if (counts_.empty()) counts_.assign(edges_.size() + 1, 0);
  std::size_t bucket = edges_.size();  // Overflow unless an edge admits it.
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (sample <= edges_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++total_;
  sum_ += sample;
  if (total_ == 1 || sample < min_) min_ = sample;
  if (total_ == 1 || sample > max_) max_ = sample;
}

void Histogram::merge(const Histogram& other) {
  if (other.total_ == 0 && other.edges_.empty()) return;
  if (edges_.empty() && total_ == 0) {
    *this = other;
    return;
  }
  if (edges_ != other.edges_) {
    throw std::invalid_argument("Histogram::merge requires identical upper edges");
  }
  if (other.total_ == 0) return;
  if (counts_.empty()) counts_.assign(edges_.size() + 1, 0);
  for (std::size_t i = 0; i < counts_.size() && i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (total_ == 0 || other.min_ < min_) min_ = other.min_;
  if (total_ == 0 || other.max_ > max_) max_ = other.max_;
  total_ += other.total_;
  sum_ += other.sum_;
}

namespace {

/// JSON number: full precision, non-finite as null (JSON has no inf/nan).
void json_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  std::ostringstream text;
  text.precision(17);
  text << v;
  out << text.str();
}

void json_histogram(std::ostream& out, const Histogram& h) {
  out << "{\"total\":" << h.total() << ",\"sum\":";
  json_number(out, h.sum());
  out << ",\"min\":";
  json_number(out, h.min());
  out << ",\"max\":";
  json_number(out, h.max());
  out << ",\"upper_edges\":[";
  for (std::size_t i = 0; i < h.upper_edges().size(); ++i) {
    if (i > 0) out << ',';
    json_number(out, h.upper_edges()[i]);
  }
  out << "],\"counts\":[";
  for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
    if (i > 0) out << ',';
    out << h.bucket_counts()[i];
  }
  out << "]}";
}

}  // namespace

std::string to_json(const RunMetrics& m) {
  std::ostringstream out;
  out << "{\"makespan\":";
  json_number(out, m.makespan);

  out << ",\"des\":{"
      << "\"events_scheduled\":" << m.des.events_scheduled
      << ",\"events_executed\":" << m.des.events_executed
      << ",\"events_cancelled\":" << m.des.events_cancelled
      << ",\"queue_depth_high_water\":" << m.des.queue_depth_high_water
      << ",\"wall_seconds\":";
  json_number(out, m.des.wall_seconds);
  out << ",\"events_per_second\":";
  json_number(out, m.des.events_per_second);
  out << "}";

  out << ",\"engine\":{"
      << "\"uplink_busy_time\":";
  json_number(out, m.engine.uplink_busy_time);
  out << ",\"uplink_idle_time\":";
  json_number(out, m.engine.uplink_idle_time);
  out << ",\"uplink_utilization\":";
  json_number(out, m.engine.uplink_utilization);
  out << ",\"uplink_transfer_time\":";
  json_number(out, m.engine.uplink_transfer_time);
  out << ",\"downlink_busy_time\":";
  json_number(out, m.engine.downlink_busy_time);
  out << ",\"hol_blocking_time\":";
  json_number(out, m.engine.hol_blocking_time);
  out << ",\"dispatches\":" << m.engine.dispatches
      << ",\"completions\":" << m.engine.completions
      << ",\"redispatches\":" << m.engine.redispatches << ",\"work_dispatched\":";
  json_number(out, m.engine.work_dispatched);
  out << ",\"work_redispatched\":";
  json_number(out, m.engine.work_redispatched);
  out << ",\"mean_worker_utilization\":";
  json_number(out, m.engine.mean_worker_utilization);
  out << ",\"chunk_sizes\":";
  json_histogram(out, m.engine.chunk_sizes);
  out << ",\"compute_durations\":";
  json_histogram(out, m.engine.compute_durations);
  out << ",\"timeout_windows\":";
  json_histogram(out, m.engine.timeout_windows);
  out << ",\"rto_values\":";
  json_histogram(out, m.engine.rto_values);
  out << ",\"workers\":[";
  for (std::size_t w = 0; w < m.engine.workers.size(); ++w) {
    const WorkerSpans& ws = m.engine.workers[w];
    if (w > 0) out << ',';
    out << "{\"compute_time\":";
    json_number(out, ws.compute_time);
    out << ",\"aborted_time\":";
    json_number(out, ws.aborted_time);
    out << ",\"idle_time\":";
    json_number(out, ws.idle_time);
    out << ",\"down_time\":";
    json_number(out, ws.down_time);
    out << ",\"receive_time\":";
    json_number(out, ws.receive_time);
    out << ",\"dispatches\":" << ws.dispatches << ",\"completions\":" << ws.completions << "}";
  }
  out << "]}";

  out << ",\"faults\":{"
      << "\"failures\":" << m.faults.failures << ",\"recoveries\":" << m.faults.recoveries
      << ",\"fencings\":" << m.faults.fencings
      << ",\"false_suspicions\":" << m.faults.false_suspicions
      << ",\"backoff_retries\":" << m.faults.backoff_retries
      << ",\"rejoins\":" << m.faults.rejoins << ",\"chunks_lost\":" << m.faults.chunks_lost
      << ",\"chunks_redispatched\":" << m.faults.chunks_redispatched
      << ",\"messages_lost\":" << m.faults.messages_lost
      << ",\"latency_spikes\":" << m.faults.latency_spikes
      << ",\"degraded_sends\":" << m.faults.degraded_sends
      << ",\"retransmits\":" << m.faults.retransmits << ",\"work_retransmitted\":";
  json_number(out, m.faults.work_retransmitted);
  out << ",\"duplicates_suppressed\":" << m.faults.duplicates_suppressed
      << ",\"checkpoints_banked\":" << m.faults.checkpoints_banked << ",\"work_banked\":";
  json_number(out, m.faults.work_banked);
  out << "}}";
  return out.str();
}

void CacheStats::merge(const CacheStats& other) noexcept {
  lookups += other.lookups;
  hits += other.hits;
  misses += other.misses;
  insertions += other.insertions;
  evictions += other.evictions;
  collisions += other.collisions;
  failed_solves += other.failed_solves;
  entries += other.entries;
  bytes_cached += other.bytes_cached;
}

std::string to_json(const ServeStats& s) {
  std::ostringstream out;
  out << "{\"received\":" << s.received << ",\"admitted\":" << s.admitted
      << ",\"rejected\":" << s.rejected << ",\"shed\":" << s.shed
      << ",\"completed\":" << s.completed
      << ",\"queue_depth_high_water\":" << s.queue_depth_high_water
      << ",\"queries\":" << s.queries << ",\"query_errors\":" << s.query_errors
      << ",\"solves\":" << s.solves << ",\"protocol_errors\":" << s.protocol_errors
      << ",\"plan_cache\":{"
      << "\"lookups\":" << s.plan_cache.lookups << ",\"hits\":" << s.plan_cache.hits
      << ",\"misses\":" << s.plan_cache.misses
      << ",\"insertions\":" << s.plan_cache.insertions
      << ",\"evictions\":" << s.plan_cache.evictions
      << ",\"collisions\":" << s.plan_cache.collisions
      << ",\"failed_solves\":" << s.plan_cache.failed_solves
      << ",\"entries\":" << s.plan_cache.entries
      << ",\"bytes_cached\":" << s.plan_cache.bytes_cached << "}}";
  return out.str();
}

std::string to_json(const JobsStats& s) {
  std::ostringstream out;
  out << "{\"arrived\":" << s.arrived << ",\"admitted\":" << s.admitted
      << ",\"rejected\":" << s.rejected << ",\"shed\":" << s.shed
      << ",\"completed\":" << s.completed << ",\"response_times\":";
  json_histogram(out, s.response_times);
  out << ",\"slowdowns\":";
  json_histogram(out, s.slowdowns);
  out << ",\"queue_waits\":";
  json_histogram(out, s.queue_waits);
  out << ",\"job_sizes\":";
  json_histogram(out, s.job_sizes);
  out << "}";
  return out.str();
}

namespace {

void csv_row(std::ostream& out, const std::string& metric, double value) {
  out << metric << ',';
  std::ostringstream text;
  text.precision(17);
  text << value;
  out << text.str() << '\n';
}

void csv_row(std::ostream& out, const std::string& metric, std::uint64_t value) {
  out << metric << ',' << value << '\n';
}

}  // namespace

void write_csv(std::ostream& out, const RunMetrics& m) {
  out << "metric,value\n";
  csv_row(out, "makespan", m.makespan);
  csv_row(out, "des.events_scheduled", static_cast<std::uint64_t>(m.des.events_scheduled));
  csv_row(out, "des.events_executed", static_cast<std::uint64_t>(m.des.events_executed));
  csv_row(out, "des.events_cancelled", static_cast<std::uint64_t>(m.des.events_cancelled));
  csv_row(out, "des.queue_depth_high_water",
          static_cast<std::uint64_t>(m.des.queue_depth_high_water));
  csv_row(out, "des.wall_seconds", m.des.wall_seconds);
  csv_row(out, "des.events_per_second", m.des.events_per_second);
  csv_row(out, "engine.uplink_busy_time", m.engine.uplink_busy_time);
  csv_row(out, "engine.uplink_idle_time", m.engine.uplink_idle_time);
  csv_row(out, "engine.uplink_utilization", m.engine.uplink_utilization);
  csv_row(out, "engine.uplink_transfer_time", m.engine.uplink_transfer_time);
  csv_row(out, "engine.downlink_busy_time", m.engine.downlink_busy_time);
  csv_row(out, "engine.hol_blocking_time", m.engine.hol_blocking_time);
  csv_row(out, "engine.dispatches", static_cast<std::uint64_t>(m.engine.dispatches));
  csv_row(out, "engine.completions", static_cast<std::uint64_t>(m.engine.completions));
  csv_row(out, "engine.redispatches", static_cast<std::uint64_t>(m.engine.redispatches));
  csv_row(out, "engine.work_dispatched", m.engine.work_dispatched);
  csv_row(out, "engine.work_redispatched", m.engine.work_redispatched);
  csv_row(out, "engine.mean_worker_utilization", m.engine.mean_worker_utilization);
  for (std::size_t w = 0; w < m.engine.workers.size(); ++w) {
    const WorkerSpans& ws = m.engine.workers[w];
    const std::string prefix = "worker" + std::to_string(w) + '.';
    csv_row(out, prefix + "compute_time", ws.compute_time);
    csv_row(out, prefix + "aborted_time", ws.aborted_time);
    csv_row(out, prefix + "idle_time", ws.idle_time);
    csv_row(out, prefix + "down_time", ws.down_time);
    csv_row(out, prefix + "receive_time", ws.receive_time);
    csv_row(out, prefix + "dispatches", static_cast<std::uint64_t>(ws.dispatches));
    csv_row(out, prefix + "completions", static_cast<std::uint64_t>(ws.completions));
  }
  csv_row(out, "faults.failures", static_cast<std::uint64_t>(m.faults.failures));
  csv_row(out, "faults.recoveries", static_cast<std::uint64_t>(m.faults.recoveries));
  csv_row(out, "faults.fencings", static_cast<std::uint64_t>(m.faults.fencings));
  csv_row(out, "faults.false_suspicions",
          static_cast<std::uint64_t>(m.faults.false_suspicions));
  csv_row(out, "faults.backoff_retries", static_cast<std::uint64_t>(m.faults.backoff_retries));
  csv_row(out, "faults.rejoins", static_cast<std::uint64_t>(m.faults.rejoins));
  csv_row(out, "faults.chunks_lost", static_cast<std::uint64_t>(m.faults.chunks_lost));
  csv_row(out, "faults.chunks_redispatched",
          static_cast<std::uint64_t>(m.faults.chunks_redispatched));
  csv_row(out, "faults.messages_lost", static_cast<std::uint64_t>(m.faults.messages_lost));
  csv_row(out, "faults.latency_spikes", static_cast<std::uint64_t>(m.faults.latency_spikes));
  csv_row(out, "faults.degraded_sends", static_cast<std::uint64_t>(m.faults.degraded_sends));
  csv_row(out, "faults.retransmits", static_cast<std::uint64_t>(m.faults.retransmits));
  csv_row(out, "faults.work_retransmitted", m.faults.work_retransmitted);
  csv_row(out, "faults.duplicates_suppressed",
          static_cast<std::uint64_t>(m.faults.duplicates_suppressed));
  csv_row(out, "faults.checkpoints_banked",
          static_cast<std::uint64_t>(m.faults.checkpoints_banked));
  csv_row(out, "faults.work_banked", m.faults.work_banked);
}

std::string to_csv(const RunMetrics& m) {
  std::ostringstream out;
  write_csv(out, m);
  return out.str();
}

}  // namespace rumr::obs
