#include "obs/accumulators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rumr::obs {

QuantileSketch::QuantileSketch(double min_edge, double growth, std::size_t buckets)
    : min_edge_(min_edge),
      growth_(growth),
      inv_log_growth_(1.0 / std::log(growth)),
      buckets_(buckets) {
  if (!(min_edge > 0.0) || !(growth > 1.0) || buckets < 1) {
    throw std::invalid_argument(
        "QuantileSketch needs min_edge > 0, growth > 1, buckets >= 1");
  }
  counts_.assign(buckets_ + 2, 0);
}

std::size_t QuantileSketch::bucket_of(double sample) const noexcept {
  if (!(sample > min_edge_)) return 0;  // Underflow (also NaN: comparison false).
  const double position = std::log(sample / min_edge_) * inv_log_growth_;
  // position in (0, buckets_] maps to bucket 1..buckets_; beyond -> overflow.
  const double cell = std::ceil(position);
  if (cell > static_cast<double>(buckets_)) return buckets_ + 1;
  return static_cast<std::size_t>(cell);
}

void QuantileSketch::add(double sample) noexcept {
  ++counts_[bucket_of(sample)];
  ++count_;
  sum_ += sample;
  if (count_ == 1 || sample < min_) min_ = sample;
  if (count_ == 1 || sample > max_) max_ = sample;
}

bool QuantileSketch::same_comb(const QuantileSketch& other) const noexcept {
  // The comb is fully determined by its three construction parameters; they
  // are never mutated, so bitwise comparison is the right equality here.
  return min_edge_ == other.min_edge_ && growth_ == other.growth_ &&
         buckets_ == other.buckets_;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (!same_comb(other)) {
    throw std::invalid_argument("QuantileSketch::merge requires an identical comb");
  }
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double QuantileSketch::bucket_lo(std::size_t b) const noexcept {
  double lo = 0.0;
  if (b == 0) {
    lo = 0.0;
  } else {
    lo = min_edge_ * std::pow(growth_, static_cast<double>(b - 1));
  }
  return std::max(lo, min_);
}

double QuantileSketch::bucket_hi(std::size_t b) const noexcept {
  double hi = 0.0;
  if (b >= buckets_ + 1) {
    hi = max_;
  } else {
    hi = min_edge_ * std::pow(growth_, static_cast<double>(b));
  }
  return std::min(hi, max_);
}

double QuantileSketch::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // rank in [1, count_]: the q-th order statistic (nearest-rank, then
  // interpolated within the resolved bucket).
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  double below = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double in_bucket = static_cast<double>(counts_[b]);
    if (in_bucket <= 0.0) continue;
    if (below + in_bucket >= rank) {
      const double lo = bucket_lo(b);
      const double hi = bucket_hi(b);
      const double frac = (rank - below) / in_bucket;
      return lo + (hi - lo) * frac;
    }
    below += in_bucket;
  }
  return max_;  // Rounding fell off the end: the top order statistic.
}

}  // namespace rumr::obs
