#pragma once

/// \file accumulators.hpp
/// Mergeable streaming accumulators for sharded aggregation.
///
/// The sharded sweep engine (sweep/runner.hpp) partitions a cell's
/// repetitions across shards, folds each shard's observations into local
/// accumulators, and reduces the shards with merge(). Every accumulator here
/// therefore satisfies two contracts the engine's determinism guarantee
/// rests on:
///
///   - streaming: add() is O(1) in memory — a shard's footprint does not
///     grow with the number of observations it folds in;
///   - mergeable: merge() combines two accumulators into the accumulator of
///     the concatenated sample. Integer state (counts) merges exactly, so it
///     is associative and commutative outright; floating state (sums,
///     Welford moments) is exact only up to rounding, which is why the
///     engine always reduces shards in shard-index order — a fixed merge
///     tree makes the result byte-identical regardless of thread count or
///     completion order, and check's merge audit pins the sharded-vs-serial
///     agreement at 1e-9.
///
/// The pieces: obs::Counter and obs::Histogram (metrics.hpp) grew merge()
/// for this purpose; StreamingMoments re-exports stats::Accumulator (mean /
/// variance via Welford, pairwise merge); QuantileSketch adds streaming
/// quantile estimates on a fixed geometric comb.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/summary.hpp"

namespace rumr::obs {

/// Streaming mean/variance with an associative merge — Welford's algorithm
/// plus the Chan et al. pairwise combination. Lives in stats:: because the
/// batch helpers use it too; re-exported here so the obs accumulator family
/// is complete in one include.
using StreamingMoments = stats::Accumulator;

/// Streaming quantile sketch on a fixed geometric comb.
///
/// Samples land in log-spaced buckets between `min_edge` and
/// `min_edge * growth^buckets`; quantile() interpolates linearly inside the
/// resolved bucket, so the estimate's relative error is bounded by the
/// bucket width (growth - 1, e.g. 5% for the default comb). Because the comb
/// is fixed at construction, add() is allocation-free and merge() is exact
/// on the counts: two sketches with the same comb merge associatively and
/// commutatively (the doubles — sum, min, max — are exact-in-any-order for
/// min/max and order-sensitive only in the last ulps for the sum).
///
/// This is deliberately simpler than GK/t-digest sketches: deterministic,
/// byte-stable under a fixed merge order, and accurate enough for the
/// makespan/response-time distributions the sweep engine summarizes.
class QuantileSketch {
 public:
  /// Default comb: 128 buckets from 1e-3 growing 5% per bucket (covers
  /// ~1e-3 .. 500 with <= 5% relative quantile error; values outside the
  /// comb land in the under/overflow buckets and are bounded by min()/max()).
  QuantileSketch() : QuantileSketch(1e-3, 1.05, 128) {}

  /// Custom comb. Requires min_edge > 0, growth > 1, buckets >= 1.
  QuantileSketch(double min_edge, double growth, std::size_t buckets);

  void add(double sample) noexcept;

  /// Merges a sketch with the same comb (asserted) into this one.
  void merge(const QuantileSketch& other);

  /// Estimated q-quantile, q in [0, 1]; exact at the observed min/max ends,
  /// linearly interpolated inside the resolved bucket. 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }

  /// True when `other` uses an identical comb (mergeable).
  [[nodiscard]] bool same_comb(const QuantileSketch& other) const noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }

 private:
  /// Bucket index for a sample: 0 is the underflow bucket (<= min_edge),
  /// buckets_ + 1 the overflow bucket.
  [[nodiscard]] std::size_t bucket_of(double sample) const noexcept;
  /// Lower/upper value bounds of bucket `b`, clamped to the observed range.
  [[nodiscard]] double bucket_lo(std::size_t b) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t b) const noexcept;

  double min_edge_ = 0.0;
  double growth_ = 0.0;
  double inv_log_growth_ = 0.0;
  std::size_t buckets_ = 0;
  std::vector<std::uint64_t> counts_;  ///< underflow + buckets + overflow.
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rumr::obs
