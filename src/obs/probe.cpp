#include "obs/probe.hpp"

namespace rumr::obs {

EngineProbe::EngineProbe(std::size_t num_workers)
    : spans_(num_workers),
      state_(num_workers, State::kIdle),
      state_since_(num_workers, 0.0) {}

void EngineProbe::uplink_channels(std::size_t busy_channels, double now) {
  if (busy_channels_ > 0) {
    uplink_busy_ += now - uplink_since_;
  } else {
    uplink_idle_ += now - uplink_since_;
  }
  uplink_since_ = now;
  busy_channels_ = busy_channels;
}

void EngineProbe::block_begin(double now) {
  blocked_ = true;
  block_since_ = now;
}

void EngineProbe::block_end(double now) {
  if (!blocked_) return;
  blocked_ = false;
  hol_blocking_ += now - block_since_;
}

void EngineProbe::settle(std::size_t w, double now) {
  const double elapsed = now - state_since_[w];
  switch (state_[w]) {
    case State::kIdle:
      spans_[w].idle_time += elapsed;
      break;
    case State::kComputing:
      // A computing segment settled by anything other than compute_end was
      // cut short: the partial result is lost.
      spans_[w].aborted_time += elapsed;
      break;
    case State::kDown:
      spans_[w].down_time += elapsed;
      break;
  }
  state_since_[w] = now;
}

void EngineProbe::compute_begin(std::size_t w, double now) {
  settle(w, now);
  state_[w] = State::kComputing;
}

void EngineProbe::compute_end(std::size_t w, double now) {
  spans_[w].compute_time += now - state_since_[w];
  state_since_[w] = now;
  state_[w] = State::kIdle;
}

void EngineProbe::compute_abort(std::size_t w, double now) {
  if (state_[w] != State::kComputing) return;
  settle(w, now);  // Computing segment -> aborted bucket.
  state_[w] = State::kIdle;
}

void EngineProbe::worker_down(std::size_t w, double now) {
  settle(w, now);
  state_[w] = State::kDown;
}

void EngineProbe::worker_up(std::size_t w, double now) {
  settle(w, now);
  state_[w] = State::kIdle;
}

std::vector<WorkerSpans> EngineProbe::finish(double end) {
  if (!finished_) {
    finished_ = true;
    uplink_channels(busy_channels_, end);  // Close the open uplink segment.
    if (blocked_) block_end(end);
    for (std::size_t w = 0; w < spans_.size(); ++w) settle(w, end);
  }
  return spans_;
}

}  // namespace rumr::obs
