#pragma once

/// \file probe.hpp
/// Live collectors the simulation engine drives while a run executes.
///
/// DesProbe watches the DES kernel through the des::EventObserver hooks and
/// tracks the pending-queue depth high-water mark. The kernel now maintains
/// that statistic natively (Simulator::queue_depth_high_water), so the engine
/// no longer attaches a DesProbe; it remains for consumers who want
/// observer-driven accounting on their own simulators. EngineProbe is a per-worker
/// state machine plus uplink occupancy accounting: the engine reports every
/// state transition (compute start/end/abort, outage start/end, channel
/// acquire/release, rendezvous block/unblock) and the probe partitions
/// [0, makespan] into the buckets RunMetrics reports.
///
/// Both probes are O(1) per transition, allocate only at construction, and
/// never touch the RNG — instrumented runs stay byte-identical.

#include <cstddef>
#include <vector>

#include "des/simulator.hpp"
#include "obs/metrics.hpp"

namespace rumr::obs {

/// Kernel-side probe: queue-depth high-water mark via the observer hooks.
class DesProbe final : public des::EventObserver {
 public:
  void on_schedule(des::EventId id, des::SimTime requested, des::SimTime now) override {
    (void)id;
    (void)requested;
    (void)now;
    ++pending_;
    if (pending_ > high_water_) high_water_ = pending_;
  }
  void on_execute(des::EventId id, des::SimTime at) override {
    (void)id;
    (void)at;
    --pending_;
  }
  void on_cancel(des::EventId id, bool was_pending) override {
    (void)id;
    if (was_pending) --pending_;
  }

  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] std::size_t queue_depth_high_water() const noexcept { return high_water_; }

 private:
  std::size_t pending_ = 0;
  std::size_t high_water_ = 0;
};

/// Engine-side probe: uplink occupancy + per-worker time partitioning.
class EngineProbe {
 public:
  explicit EngineProbe(std::size_t num_workers);

  // Uplink occupancy -------------------------------------------------------
  // The engine reports the busy-channel count after every change; the probe
  // accumulates the elapsed segment into busy (>= 1 channel held) or idle.

  void uplink_channels(std::size_t busy_channels, double now);

  // Head-of-line blocking: a rendezvous send is holding a channel while its
  // target has no free buffer slot. At most one such send exists at a time.
  void block_begin(double now);
  void block_end(double now);

  // Per-worker state machine ----------------------------------------------
  // Exactly one of {idle, computing, down} at any instant. Completed compute
  // segments land in compute_time, cut-short ones in aborted_time.

  void compute_begin(std::size_t w, double now);
  void compute_end(std::size_t w, double now);
  /// No-op unless the worker is computing (ground_down aborts via this too).
  void compute_abort(std::size_t w, double now);
  void worker_down(std::size_t w, double now);
  void worker_up(std::size_t w, double now);

  /// Receive accounting (overlaps the state machine; informational).
  void chunk_received(std::size_t w, double duration) { spans_[w].receive_time += duration; }
  void chunk_dispatched(std::size_t w) { ++spans_[w].dispatches; }
  void chunk_completed(std::size_t w) { ++spans_[w].completions; }

  /// Closes every open segment at `end` (the makespan) and returns the
  /// accumulated buckets. Call exactly once, after the run drains.
  [[nodiscard]] std::vector<WorkerSpans> finish(double end);

  [[nodiscard]] double uplink_busy_time() const noexcept { return uplink_busy_; }
  [[nodiscard]] double uplink_idle_time() const noexcept { return uplink_idle_; }
  [[nodiscard]] double hol_blocking_time() const noexcept { return hol_blocking_; }

 private:
  enum class State : unsigned char { kIdle, kComputing, kDown };

  /// Accumulates worker w's segment since its last transition into the bucket
  /// of its current state, then stamps the transition.
  void settle(std::size_t w, double now);

  std::vector<WorkerSpans> spans_;
  std::vector<State> state_;
  std::vector<double> state_since_;

  double uplink_busy_ = 0.0;
  double uplink_idle_ = 0.0;
  double uplink_since_ = 0.0;
  std::size_t busy_channels_ = 0;

  double hol_blocking_ = 0.0;
  double block_since_ = 0.0;
  bool blocked_ = false;
  bool finished_ = false;
};

}  // namespace rumr::obs
