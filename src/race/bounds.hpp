#pragma once

/// \file bounds.hpp
/// Anytime confidence bounds for the best-arm race (race/race.hpp).
///
/// Header-only on purpose: the race engine computes these bounds to decide
/// eliminations, and check::audit_race_result recomputes them from the
/// recorded elimination ledger to verify each decision — check cannot link
/// the race library (race links check), so the shared math lives in inline
/// functions both sides compile.
///
/// The radius is the empirical-Bernstein form
///
///   r(n) = sqrt(2 * var * L / n) + 3 * range * L / n,   L = log(3 / delta_eff)
///
/// with `range` the *observed* spread of the pooled sample across the active
/// arms at decision time, standing in for the (unknown) support width the
/// textbook bound assumes. That substitution makes the bound approximate —
/// the observed range under-covers the true support early on — which is why
/// the certification suite (tests/test_race.cpp) drives >= 1000 seeded races
/// against known-gap oracles and asserts the realized error rate stays under
/// delta: the guarantee is validated empirically, not just on paper.
///
/// delta_eff spreads the caller's delta over every comparison the race can
/// ever make: delta / (K * t * (t + 1)) for K arms at round t (1-based), so
/// sum_t K * delta_eff(t) = delta * sum_t 1/(t(t+1)) <= delta — a union
/// bound over arms and rounds that keeps the race anytime-valid no matter
/// when it stops.

#include <cmath>
#include <cstddef>
#include <limits>

namespace rumr::race {

/// Per-comparison error budget at round `round` (1-based) of a K-arm race.
/// Summed over all rounds and arms this never exceeds `delta`.
[[nodiscard]] inline double round_delta(double delta, std::size_t arms,
                                        std::size_t round) noexcept {
  if (arms == 0 || round == 0) return delta;
  return delta / (static_cast<double>(arms) * static_cast<double>(round) *
                  static_cast<double>(round + 1));
}

/// Empirical-Bernstein confidence radius around a sample mean with `n`
/// observations of sample variance `variance` and pooled observed spread
/// `range`. Infinite until two observations exist (the variance is
/// undefined), so no arm can be eliminated off a single sample.
[[nodiscard]] inline double confidence_radius(double variance, double range, std::size_t n,
                                              double delta_eff) noexcept {
  if (n < 2 || !(delta_eff > 0.0) || delta_eff >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double log_term = std::log(3.0 / delta_eff);
  const double dn = static_cast<double>(n);
  return std::sqrt(2.0 * variance * log_term / dn) + 3.0 * range * log_term / dn;
}

}  // namespace rumr::race
