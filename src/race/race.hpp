#pragma once

/// \file race.hpp
/// Best-arm-identification racing over scheduler policies.
///
/// The paper's claim is comparative — which scheduler wins on this platform
/// under this error regime — yet a fixed-repetition sweep spends the same
/// budget on arms that are obviously dominated after a handful of runs. A
/// *race* treats each candidate policy as an arm, samples all still-active
/// arms in synchronized blocks of seeded repetitions, and eliminates an arm
/// the moment its confidence interval (race/bounds.hpp) separates from the
/// incumbent's — successive elimination with anytime empirical-Bernstein
/// bounds, delta-certified by a union budget over arms and rounds.
///
/// Determinism contract (the same one the sharded sweep keeps):
///
///   - repetition seeds come from sweep::derive_rep_seed(base_seed, label,
///     error, rep) and are *shared across arms per repetition*, so every arm
///     faces the same perturbation lanes (paired comparisons);
///   - each sampling round runs its (arm, rep) grid through parallel_for
///     into preallocated slots and folds the rewards in fixed (arm, rep)
///     order, so the accumulators, fingerprints, elimination order, and
///     winner are byte-identical for any thread count;
///   - elimination decisions depend only on folded statistics, never on
///     timing, so a race's outcome is a pure function of its description.
///
/// check::audit_race_result replays the recorded elimination ledger against
/// the bound math; run_race / race_cell invoke it by default.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "race/result.hpp"
#include "stats/error_model.hpp"
#include "sweep/grid.hpp"
#include "sweep/scheduler_factory.hpp"

namespace rumr::race {

/// Reward oracle for the race core: the objective value of arm `arm` on
/// repetition `rep`. MUST be a pure function of (arm, rep) — the core calls
/// it from parallel_for workers in unspecified order, and the determinism
/// contract (and thread-safety) rests on the oracle deriving everything from
/// its arguments. Smaller is better.
using ArmOracle = std::function<double(std::size_t arm, std::size_t rep)>;

/// Race configuration. The engine-backed entry points (race_cell,
/// run_race_sweep) use every field; the synthetic-oracle core (run_race)
/// ignores the simulation fields (w_total, distribution, audit_runs).
struct RaceOptions {
  /// Certification level: the probability the certified winner is not the
  /// true best arm is at most delta (validated empirically by the
  /// certification suite — see race/bounds.hpp on the range approximation).
  double delta = 0.05;
  /// Repetitions added to every active arm per round. Must be >= 2 so the
  /// first elimination check has a defined variance.
  std::size_t block = 8;
  /// Per-arm repetition budget. When it runs out with more than one
  /// survivor, the result is flagged budget_exhausted and the winner is the
  /// lowest-mean survivor (not certified).
  std::size_t max_reps = 256;
  std::size_t threads = 0;  ///< Within-round parallelism; 0 = hardware.
  std::uint64_t base_seed = 0x5eed5eed5eedULL;
  Objective objective = Objective::kMakespan;
  double w_total = 1000.0;
  stats::ErrorDistribution distribution = stats::ErrorDistribution::kTruncatedNormal;
  /// Audit every simulation with check::audit_sim_result (engine-backed
  /// races only; violations throw check::CheckError).
  bool audit_runs = true;
  /// Audit the finished race with check::audit_race_result before returning.
  bool audit_result = true;

  /// Every problem with these options, human-readable; empty = usable.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// One raced cell of a grid: the (platform, error) coordinates plus the full
/// race record.
struct RaceCell {
  std::size_t platform_index = 0;
  std::size_t error_index = 0;
  std::string platform_label;
  double error = 0.0;
  RaceResult result;
};

/// Raced-cell sink. Called under the engine's emission mutex: invocations
/// are serialized, but their order across cells is unspecified.
using RaceConsumer = std::function<void(const RaceCell&)>;

/// The race core: successive elimination over `names.size()` arms whose
/// rewards come from `oracle`. Pure of any simulation knowledge — the
/// certification suite drives it with synthetic known-gap oracles. Throws
/// std::invalid_argument on validation failure and check::CheckError when
/// audit_result is on and the ledger fails its audit.
[[nodiscard]] RaceResult run_race(const std::vector<std::string>& names,
                                  const ArmOracle& oracle, const RaceOptions& options);

/// Races `algorithms` on one (platform, error) cell: rewards are simulated
/// makespans (or slowdowns) with per-repetition seeds shared across arms via
/// sweep::derive_rep_seed. Byte-identical for any options.threads.
[[nodiscard]] RaceResult race_cell(const sweep::SweepPlatform& platform,
                                   const std::vector<sweep::AlgorithmSpec>& algorithms,
                                   double error, const RaceOptions& options);

/// Races every (platform, error) cell of a grid, cells across parallel_for
/// (each cell's race runs inline), streaming each finished cell through
/// `consumer`. The per-cell results are identical to race_cell's.
void run_race_sweep(const std::vector<sweep::SweepPlatform>& platforms,
                    const std::vector<sweep::AlgorithmSpec>& algorithms,
                    const std::vector<double>& errors, const RaceOptions& options,
                    const RaceConsumer& consumer);

}  // namespace rumr::race
