#pragma once

/// \file result.hpp
/// Result record of a best-arm race (race/race.hpp).
///
/// Header-only so check::audit_race_result (which the race library links,
/// not the reverse) can consume the record without a dependency cycle. The
/// record is deliberately a *ledger*, not just a verdict: every elimination
/// carries the full tuple the decision was made from (means, variances,
/// pooled range, synchronized sample count, per-round error budget), so the
/// auditor can recompute both confidence bounds and verify the eliminated
/// arm's interval really excluded the incumbent's at that moment.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace rumr::race {

/// What a race minimizes per repetition.
enum class Objective {
  kMakespan,  ///< Raw makespan (seconds).
  kSlowdown,  ///< Makespan / combined lower bound (platform-normalized).
};

[[nodiscard]] inline const char* to_string(Objective objective) noexcept {
  return objective == Objective::kSlowdown ? "slowdown" : "makespan";
}

/// FNV-1a offset basis — the initial value of a lane fingerprint.
inline constexpr std::uint64_t kFingerprintSeed = 0xcbf29ce484222325ULL;

/// Folds one reward's exact bit pattern into a lane fingerprint (FNV-1a over
/// the 8 bytes, little-endian byte order by construction). Byte-identity of
/// two races is asserted through these fingerprints: any FP difference in
/// any reward of any arm changes the fold.
[[nodiscard]] inline std::uint64_t fold_fingerprint(std::uint64_t fingerprint,
                                                    double reward) noexcept {
  const auto bits = std::bit_cast<std::uint64_t>(reward);
  for (int byte = 0; byte < 8; ++byte) {
    fingerprint ^= (bits >> (8 * byte)) & 0xffULL;
    fingerprint *= 0x100000001b3ULL;
  }
  return fingerprint;
}

/// One arm's standing at the end of the race.
struct ArmRecord {
  std::string name;
  /// Per-repetition objective values (Welford moments + min/max). The count
  /// equals `samples`; eliminated arms stop accumulating at elimination.
  stats::Accumulator reward;
  std::size_t samples = 0;
  bool eliminated = false;
  /// 1-based round the arm was eliminated in; 0 for survivors.
  std::size_t eliminated_round = 0;
  /// FNV-1a fold of every reward this arm observed, in repetition order.
  std::uint64_t lane_fingerprint = kFingerprintSeed;
};

/// The decision tuple behind one elimination, recorded verbatim so the
/// auditor can replay the bound math.
struct EliminationRecord {
  std::size_t arm = 0;       ///< Index of the eliminated arm.
  std::size_t best = 0;      ///< Index of the incumbent (lowest active mean).
  std::size_t round = 0;     ///< 1-based round of the decision.
  std::size_t samples = 0;   ///< Synchronized per-arm sample count at decision.
  double arm_mean = 0.0;
  double arm_variance = 0.0;
  double best_mean = 0.0;
  double best_variance = 0.0;
  /// Pooled observed spread across all active arms at decision time (the
  /// range plugged into both radii).
  double range = 0.0;
  /// Per-comparison error budget used: round_delta(delta, arms, round).
  double delta_eff = 0.0;
  /// arm_mean - radius(arm): the eliminated arm's optimistic (lower) bound.
  double arm_lcb = 0.0;
  /// best_mean + radius(best): the incumbent's pessimistic (upper) bound.
  double best_ucb = 0.0;
};

/// Everything one race produced. A pure function of the race description
/// (arms, seeds, delta, block, budget) — never of the thread count.
struct RaceResult {
  std::string platform_label;  ///< Empty for synthetic-oracle races.
  double error = 0.0;          ///< Error-axis value (0 for synthetic races).
  double delta = 0.05;
  Objective objective = Objective::kMakespan;
  std::size_t winner = 0;  ///< Index into `arms`.
  /// True when the per-arm budget ran out with more than one survivor; the
  /// winner is then the lowest-mean survivor, *not* a certified best arm.
  bool budget_exhausted = false;
  std::size_t rounds = 0;          ///< Sampling rounds executed.
  std::size_t total_samples = 0;   ///< Ledger: sum of arms[i].samples.
  std::size_t max_samples = 0;     ///< Per-arm budget the race ran under.
  std::vector<ArmRecord> arms;
  std::vector<EliminationRecord> eliminations;

  /// Simulations a fixed-repetition sweep over the same lineup and budget
  /// would have run: arms * max_samples.
  [[nodiscard]] std::size_t fixed_budget_samples() const noexcept {
    return arms.size() * max_samples;
  }

  /// fixed_budget_samples() / total_samples — the racing speedup ("3.4x
  /// fewer simulations"). 0 when no samples were drawn.
  [[nodiscard]] double sims_saved_ratio() const noexcept {
    if (total_samples == 0) return 0.0;
    return static_cast<double>(fixed_budget_samples()) /
           static_cast<double>(total_samples);
  }
};

}  // namespace rumr::race
