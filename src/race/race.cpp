#include "race/race.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "analysis/bounds.hpp"
#include "check/race_audit.hpp"
#include "check/trace_audit.hpp"
#include "race/bounds.hpp"
#include "sim/master_worker.hpp"
#include "sweep/runner.hpp"
#include "sweep/thread_pool.hpp"

namespace rumr::race {

std::vector<std::string> RaceOptions::validate() const {
  std::vector<std::string> problems;
  if (!(delta > 0.0) || !(delta < 1.0) || !std::isfinite(delta)) {
    problems.emplace_back("delta must lie in (0, 1) — it is a certification error budget");
  }
  if (block < 2) {
    problems.emplace_back(
        "block must be >= 2 — the first elimination check needs a defined variance");
  }
  if (max_reps < 2) problems.emplace_back("max_reps must be >= 2");
  if (!(w_total > 0.0) || !std::isfinite(w_total)) {
    problems.emplace_back("w_total must be positive and finite");
  }
  return problems;
}

namespace {

void throw_invalid(const char* what, const std::vector<std::string>& problems) {
  std::string joined = what;
  for (const std::string& p : problems) joined += "\n  - " + p;
  throw std::invalid_argument(joined);
}

/// The successive-elimination loop. Samples every active arm in synchronized
/// blocks, folds rewards in fixed (arm, rep) order, and prunes arms whose
/// optimistic bound clears the incumbent's pessimistic bound. Validation and
/// the final audit live in the public wrappers.
RaceResult race_core(const std::vector<std::string>& names, const ArmOracle& oracle,
                     const RaceOptions& options) {
  const std::size_t num_arms = names.size();

  RaceResult result;
  result.delta = options.delta;
  result.objective = options.objective;
  result.max_samples = options.max_reps;
  result.arms.resize(num_arms);
  for (std::size_t a = 0; a < num_arms; ++a) result.arms[a].name = names[a];

  std::vector<std::size_t> active(num_arms);
  for (std::size_t a = 0; a < num_arms; ++a) active[a] = a;

  std::size_t samples = 0;  // Per-arm; synchronized across every active arm.
  std::size_t round = 0;
  std::vector<double> rewards;

  while (active.size() > 1 && samples < options.max_reps) {
    ++round;
    const std::size_t take = std::min(options.block, options.max_reps - samples);

    // Map: the (active arm, new rep) grid through parallel_for into
    // preallocated slots. The oracle is a pure function of (arm, rep), so
    // the slot contents never depend on scheduling.
    rewards.assign(active.size() * take, 0.0);
    sweep::parallel_for(
        active.size() * take,
        [&](std::size_t idx) {
          rewards[idx] = oracle(active[idx / take], samples + idx % take);
        },
        options.threads);

    // Fold: fixed (arm ascending, rep ascending) order, so the Welford
    // moments and fingerprints are byte-identical for any thread count.
    for (std::size_t a = 0; a < active.size(); ++a) {
      ArmRecord& arm = result.arms[active[a]];
      for (std::size_t rep = 0; rep < take; ++rep) {
        const double reward = rewards[a * take + rep];
        arm.reward.add(reward);
        arm.lane_fingerprint = fold_fingerprint(arm.lane_fingerprint, reward);
        ++arm.samples;
        ++result.total_samples;
      }
    }
    samples += take;

    // Eliminate: lowest-mean active arm is the incumbent; any arm whose
    // lower bound clears the incumbent's upper bound is out.
    const double delta_eff = round_delta(options.delta, num_arms, round);
    std::size_t best = active.front();
    double pooled_lo = std::numeric_limits<double>::infinity();
    double pooled_hi = -std::numeric_limits<double>::infinity();
    for (const std::size_t idx : active) {
      const stats::Accumulator& reward = result.arms[idx].reward;
      if (reward.mean() < result.arms[best].reward.mean()) best = idx;
      pooled_lo = std::min(pooled_lo, reward.min());
      pooled_hi = std::max(pooled_hi, reward.max());
    }
    const double range = pooled_hi - pooled_lo;
    const stats::Accumulator& best_reward = result.arms[best].reward;
    const double best_ucb =
        best_reward.mean() + confidence_radius(best_reward.variance(), range, samples, delta_eff);

    std::vector<std::size_t> survivors;
    survivors.reserve(active.size());
    for (const std::size_t idx : active) {
      if (idx == best) {
        survivors.push_back(idx);
        continue;
      }
      const stats::Accumulator& reward = result.arms[idx].reward;
      const double arm_lcb =
          reward.mean() - confidence_radius(reward.variance(), range, samples, delta_eff);
      if (arm_lcb > best_ucb) {
        ArmRecord& arm = result.arms[idx];
        arm.eliminated = true;
        arm.eliminated_round = round;
        EliminationRecord record;
        record.arm = idx;
        record.best = best;
        record.round = round;
        record.samples = samples;
        record.arm_mean = reward.mean();
        record.arm_variance = reward.variance();
        record.best_mean = best_reward.mean();
        record.best_variance = best_reward.variance();
        record.range = range;
        record.delta_eff = delta_eff;
        record.arm_lcb = arm_lcb;
        record.best_ucb = best_ucb;
        result.eliminations.push_back(record);
      } else {
        survivors.push_back(idx);
      }
    }
    active = std::move(survivors);
  }

  result.rounds = round;
  result.budget_exhausted = active.size() > 1;
  std::size_t winner = active.front();
  for (const std::size_t idx : active) {
    if (result.arms[idx].reward.mean() < result.arms[winner].reward.mean()) winner = idx;
  }
  result.winner = winner;
  return result;
}

}  // namespace

RaceResult run_race(const std::vector<std::string>& names, const ArmOracle& oracle,
                    const RaceOptions& options) {
  std::vector<std::string> problems = options.validate();
  if (names.empty()) problems.emplace_back("at least one arm is required");
  if (!oracle) problems.emplace_back("an arm oracle is required");
  if (!problems.empty()) throw_invalid("invalid race request:", problems);

  RaceResult result = race_core(names, oracle, options);
  if (options.audit_result) check::audit_race_result(result).throw_if_failed();
  return result;
}

RaceResult race_cell(const sweep::SweepPlatform& platform,
                     const std::vector<sweep::AlgorithmSpec>& algorithms, double error,
                     const RaceOptions& options) {
  std::vector<std::string> problems = options.validate();
  if (algorithms.empty()) problems.emplace_back("at least one algorithm is required");
  if (!std::isfinite(error) || error < 0.0) {
    problems.emplace_back("error must be non-negative and finite");
  }
  if (!problems.empty()) throw_invalid("invalid race-cell request:", problems);

  std::vector<std::string> names;
  names.reserve(algorithms.size());
  for (const sweep::AlgorithmSpec& spec : algorithms) names.push_back(spec.name);

  // The slowdown objective normalizes by the cell's combined makespan lower
  // bound — constant per cell, so it rescales rewards without reordering
  // arms, but makes cells comparable across platforms.
  double lower_bound = 1.0;
  if (options.objective == Objective::kSlowdown) {
    lower_bound =
        analysis::makespan_lower_bounds(platform.platform, options.w_total).combined();
  }

  const ArmOracle oracle = [&platform, &algorithms, error, lower_bound,
                            &options](std::size_t arm, std::size_t rep) {
    // One seed per repetition, shared by every arm: all arms face the same
    // perturbation lanes, keeping the comparisons paired.
    const std::uint64_t seed =
        sweep::derive_rep_seed(options.base_seed, platform.label, error, rep);
    const auto policy = algorithms[arm].make(platform.platform, options.w_total, error);
    sim::SimOptions sim_options;
    sim_options.comm_error = stats::ErrorModel(options.distribution, error);
    sim_options.comp_error = stats::ErrorModel(options.distribution, error);
    sim_options.seed = seed;
    const sim::SimResult sim_result = sim::simulate(platform.platform, *policy, sim_options);
    if (options.audit_runs) {
      check::TraceAuditOptions audit_options;
      audit_options.work_tolerance = sim_options.work_tolerance;
      audit_options.uplink_channels = sim_options.uplink_channels;
      check::audit_sim_result(sim_result, platform.platform, options.w_total, audit_options)
          .throw_if_failed();
    }
    return sim_result.makespan / lower_bound;
  };

  RaceResult result = race_core(names, oracle, options);
  result.platform_label = platform.label;
  result.error = error;
  if (options.audit_result) check::audit_race_result(result).throw_if_failed();
  return result;
}

void run_race_sweep(const std::vector<sweep::SweepPlatform>& platforms,
                    const std::vector<sweep::AlgorithmSpec>& algorithms,
                    const std::vector<double>& errors, const RaceOptions& options,
                    const RaceConsumer& consumer) {
  std::vector<std::string> problems = options.validate();
  if (platforms.empty()) problems.emplace_back("platforms axis is empty — nothing to race");
  if (errors.empty()) problems.emplace_back("errors axis is empty — nothing to race");
  for (const double e : errors) {
    if (!std::isfinite(e) || e < 0.0) {
      problems.emplace_back("errors axis contains a negative or non-finite level");
      break;
    }
  }
  if (algorithms.empty()) problems.emplace_back("at least one algorithm is required");
  if (!consumer) problems.emplace_back("a cell consumer is required");
  if (!problems.empty()) throw_invalid("invalid race-sweep request:", problems);

  // Cells are the parallel unit; each cell's race runs inline so its result
  // is trivially independent of the outer thread count (and identical to a
  // standalone race_cell at any threads= setting).
  RaceOptions cell_options = options;
  cell_options.threads = 1;
  const std::size_t num_errors = errors.size();
  std::mutex emit_mutex;

  sweep::parallel_for(
      platforms.size() * num_errors,
      [&](std::size_t site) {
        RaceCell cell;
        cell.platform_index = site / num_errors;
        cell.error_index = site % num_errors;
        cell.platform_label = platforms[cell.platform_index].label;
        cell.error = errors[cell.error_index];
        cell.result =
            race_cell(platforms[cell.platform_index], algorithms, cell.error, cell_options);
        const std::lock_guard lock(emit_mutex);
        consumer(cell);
      },
      options.threads);
}

}  // namespace rumr::race
