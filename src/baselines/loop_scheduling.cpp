#include "baselines/loop_scheduling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rumr::baselines {

std::vector<double> gss_chunks(double w_total, std::size_t num_workers, double min_chunk) {
  if (!(w_total > 0.0)) return {};
  if (num_workers == 0) throw std::invalid_argument("GSS needs >= 1 worker");
  const auto n = static_cast<double>(num_workers);
  const double floor_chunk = std::max(min_chunk, 1e-6 * w_total);
  const double epsilon = 1e-12 * w_total;

  std::vector<double> chunks;
  double remaining = w_total;
  while (remaining > epsilon) {
    double take = std::max(remaining / n, floor_chunk);
    take = std::min(take, remaining);
    if (remaining - take < 0.5 * floor_chunk) take = remaining;
    chunks.push_back(take);
    remaining -= take;
  }
  return chunks;
}

std::vector<double> tss_chunks(double w_total, std::size_t num_workers,
                               const TssOptions& options) {
  if (!(w_total > 0.0)) return {};
  if (num_workers == 0) throw std::invalid_argument("TSS needs >= 1 worker");
  if (!(options.last > 0.0)) throw std::invalid_argument("TSS last chunk must be positive");
  const auto n = static_cast<double>(num_workers);
  const double first =
      options.first > 0.0 ? options.first : std::max(options.last, w_total / (2.0 * n));
  const double last = std::min(options.last, first);

  // Tzen & Ni: with linear decay from f to l, the number of dispatches is
  // about ceil(2W / (f + l)); the per-dispatch decrement follows.
  const double count = std::max(1.0, std::ceil(2.0 * w_total / (first + last)));
  const double decrement = count > 1.0 ? (first - last) / (count - 1.0) : 0.0;

  std::vector<double> chunks;
  double remaining = w_total;
  double size = first;
  const double epsilon = 1e-12 * w_total;
  while (remaining > epsilon) {
    double take = std::min(std::max(size, last), remaining);
    if (remaining - take < 0.5 * last) take = remaining;  // Absorb the dust.
    chunks.push_back(take);
    remaining -= take;
    size -= decrement;
  }
  return chunks;
}

std::vector<std::pair<std::size_t, double>> weighted_factoring_chunks(
    double w_total, const std::vector<double>& weights, const FactoringOptions& options) {
  if (!(w_total > 0.0)) return {};
  if (weights.empty()) throw std::invalid_argument("weighted factoring needs >= 1 weight");
  if (!(options.factor > 1.0)) throw std::invalid_argument("factoring factor must exceed 1");
  double weight_sum = 0.0;
  for (double w : weights) {
    if (!(w > 0.0)) throw std::invalid_argument("weights must be positive");
    weight_sum += w;
  }

  const double floor_chunk = std::max(options.min_chunk, 1e-6 * w_total);
  const double epsilon = 1e-12 * w_total;
  std::vector<std::pair<std::size_t, double>> plan;
  double remaining = w_total;
  while (remaining > epsilon) {
    const double batch = std::max(remaining / options.factor,
                                  floor_chunk * static_cast<double>(weights.size()));
    for (std::size_t i = 0; i < weights.size() && remaining > epsilon; ++i) {
      double take = std::min(batch * weights[i] / weight_sum, remaining);
      if (remaining - take < 0.5 * floor_chunk) take = remaining;
      if (take > 0.0) {
        plan.emplace_back(i, take);
        remaining -= take;
      }
    }
  }
  return plan;
}

GssPolicy::GssPolicy(double w_total, std::size_t num_workers, double min_chunk)
    : SelfSchedulingPolicy("GSS", gss_chunks(w_total, num_workers, min_chunk), num_workers) {}

TssPolicy::TssPolicy(double w_total, std::size_t num_workers, const TssOptions& options)
    : SelfSchedulingPolicy("TSS", tss_chunks(w_total, num_workers, options), num_workers) {}

CssPolicy::CssPolicy(double w_total, std::size_t num_workers, double chunk_size)
    : SelfSchedulingPolicy("CSS",
                           [&] {
                             if (!(chunk_size > 0.0)) {
                               throw std::invalid_argument("CSS chunk size must be positive");
                             }
                             std::vector<double> chunks;
                             double remaining = w_total;
                             const double epsilon = 1e-12 * w_total;
                             while (remaining > epsilon) {
                               double take = std::min(chunk_size, remaining);
                               if (remaining - take < 1e-9 * w_total) take = remaining;
                               chunks.push_back(take);
                               remaining -= take;
                             }
                             return chunks;
                           }(),
                           num_workers) {}

WeightedFactoringPolicy::WeightedFactoringPolicy(const platform::StarPlatform& platform,
                                                 double w_total, const FactoringOptions& options) {
  std::vector<double> weights;
  weights.reserve(platform.size());
  for (const platform::WorkerSpec& w : platform.workers()) weights.push_back(w.speed);
  plan_ = weighted_factoring_chunks(w_total, weights, options);
  for (const auto& [worker, chunk] : plan_) total_work_ += chunk;
}

WeightedFactoringPolicy::WeightedFactoringPolicy(double w_total,
                                                 std::vector<std::size_t> workers,
                                                 const std::vector<double>& weights,
                                                 const FactoringOptions& options) {
  if (workers.size() != weights.size()) {
    throw std::invalid_argument("weighted factoring: workers/weights size mismatch");
  }
  plan_ = weighted_factoring_chunks(w_total, weights, options);
  // Map weight positions back to platform worker indices.
  for (auto& [position, chunk] : plan_) position = workers[position];
  for (const auto& [worker, chunk] : plan_) total_work_ += chunk;
}

std::optional<sim::Dispatch> WeightedFactoringPolicy::next_dispatch(
    const sim::MasterContext& ctx) {
  if (cursor_ >= plan_.size()) return std::nullopt;
  // Each chunk is pre-assigned to a worker (its size was computed from that
  // worker's weight); dispatch it only when its worker is idle, but allow
  // later chunks of the same batch to overtake blocked ones so one slow
  // worker does not stall the batch.
  for (std::size_t probe = cursor_; probe < plan_.size(); ++probe) {
    const auto [worker, chunk] = plan_[probe];
    const sim::WorkerStatus& st = ctx.worker_status(worker);
    if (st.alive && st.outstanding == 0) {
      // Swap the served chunk to the cursor to keep the plan compact.
      std::swap(plan_[cursor_], plan_[probe]);
      ++cursor_;
      return sim::Dispatch{worker, chunk};
    }
  }
  // Fault fallback: every remaining chunk is pinned to a fenced or busy
  // worker. Redirect the head chunk to an idle alive worker so a dead
  // worker's share is redistributed instead of stranding the plan.
  for (std::size_t probe = cursor_; probe < plan_.size(); ++probe) {
    if (ctx.worker_status(plan_[probe].first).alive) continue;
    std::size_t fallback = ctx.num_workers();
    for (std::size_t w = 0; w < ctx.num_workers(); ++w) {
      const sim::WorkerStatus& st = ctx.worker_status(w);
      if (!st.alive || st.outstanding != 0) continue;
      if (fallback == ctx.num_workers() ||
          st.predicted_ready < ctx.worker_status(fallback).predicted_ready) {
        fallback = w;
      }
    }
    if (fallback == ctx.num_workers()) break;  // Nobody idle yet: wait.
    std::swap(plan_[cursor_], plan_[probe]);
    const double chunk = plan_[cursor_].second;
    ++cursor_;
    return sim::Dispatch{fallback, chunk};
  }
  return std::nullopt;
}

namespace {

FactoringOptions overhead_floor_options(const platform::StarPlatform& platform) {
  FactoringOptions options;
  options.min_chunk = empty_round_overhead_work(platform);
  return options;
}

}  // namespace

std::unique_ptr<sim::SchedulerPolicy> make_gss_policy(const platform::StarPlatform& platform,
                                                      double w_total) {
  return std::make_unique<GssPolicy>(w_total, platform.size(),
                                     empty_round_overhead_work(platform));
}

std::unique_ptr<sim::SchedulerPolicy> make_tss_policy(const platform::StarPlatform& platform,
                                                      double w_total) {
  TssOptions options;
  options.last = std::max(1.0, empty_round_overhead_work(platform));
  return std::make_unique<TssPolicy>(w_total, platform.size(), options);
}

std::unique_ptr<sim::SchedulerPolicy> make_css_policy(const platform::StarPlatform& platform,
                                                      double w_total, double chunk_size) {
  (void)platform;
  return std::make_unique<CssPolicy>(w_total, platform.size(), chunk_size);
}

std::unique_ptr<sim::SchedulerPolicy> make_weighted_factoring_policy(
    const platform::StarPlatform& platform, double w_total) {
  return std::make_unique<WeightedFactoringPolicy>(platform, w_total,
                                                   overhead_floor_options(platform));
}

}  // namespace rumr::baselines
