#include "baselines/multi_installment.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "baselines/static_sequence.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace rumr::baselines {

std::vector<sim::Dispatch> MiSchedule::to_plan() const {
  std::vector<sim::Dispatch> plan;
  for (const auto& round : chunk) {
    for (std::size_t i = 0; i < round.size(); ++i) {
      if (round[i] > 0.0) plan.push_back({i, round[i]});
    }
  }
  return plan;
}

double MiSchedule::total() const {
  double sum = 0.0;
  for (const auto& round : chunk) {
    for (double c : round) sum += c;
  }
  return sum;
}

MiSchedule solve_multi_installment(const platform::StarPlatform& platform, double w_total,
                                   std::size_t installments) {
  if (installments == 0) throw std::invalid_argument("MI requires at least one installment");
  if (!(w_total > 0.0)) throw std::invalid_argument("MI requires a positive workload");

  const std::size_t n = platform.size();
  const std::size_t x = installments;
  const std::size_t vars = n * x;
  const auto var = [n](std::size_t j, std::size_t i) { return j * n + i; };

  // Row v in dispatch order is installment v / n, worker v % n. The
  // serialized transfer time of variable v is alpha_v / B_{v % n} (zero
  // latency: MI models neither nLat nor cLat nor tLat).
  linalg::Matrix a(vars, vars);
  std::vector<double> b(vars, 0.0);
  std::size_t row = 0;

  // (1) Just-in-time: chunk (j+1, i) arrives exactly when chunk (j, i)
  // finishes computing, i.e.
  //   sum_{v0(i) < v <= v(j+1,i)} alpha_v / B_{w(v)} = sum_{k<=j} alpha_{k,i} / S_i.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j + 1 < x; ++j) {
      for (std::size_t v = var(0, i) + 1; v <= var(j + 1, i); ++v) {
        a(row, v) += 1.0 / platform.worker(v % n).bandwidth;
      }
      for (std::size_t k = 0; k <= j; ++k) {
        a(row, var(k, i)) -= 1.0 / platform.worker(i).speed;
      }
      b[row] = 0.0;
      ++row;
    }
  }

  // (2) Simultaneous finish: finish(x-1, i) == finish(x-1, i+1), where
  //   finish(x-1, i) = arrival(0, i) + sum_k alpha_{k,i} / S_i
  // and arrival(0, i) = sum_{v <= v(0,i)} alpha_v / B_{w(v)}.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t v = 0; v <= var(0, i); ++v) {
      a(row, v) += 1.0 / platform.worker(v % n).bandwidth;
    }
    for (std::size_t k = 0; k < x; ++k) a(row, var(k, i)) += 1.0 / platform.worker(i).speed;
    for (std::size_t v = 0; v <= var(0, i + 1); ++v) {
      a(row, v) -= 1.0 / platform.worker(v % n).bandwidth;
    }
    for (std::size_t k = 0; k < x; ++k) {
      a(row, var(k, i + 1)) -= 1.0 / platform.worker(i + 1).speed;
    }
    b[row] = 0.0;
    ++row;
  }

  // (3) Conservation.
  for (std::size_t v = 0; v < vars; ++v) a(row, v) = 1.0;
  b[row] = w_total;
  ++row;

  std::vector<double> alpha = linalg::solve(a, b);

  MiSchedule schedule;
  schedule.installments = x;
  schedule.chunk.assign(x, std::vector<double>(n, 0.0));

  if (alpha.empty()) {
    // Singular system (degenerate platform): fall back to a uniform split so
    // the caller still gets a valid, conservative schedule.
    schedule.clamped = true;
    const double uniform = w_total / static_cast<double>(vars);
    for (std::size_t j = 0; j < x; ++j) {
      for (std::size_t i = 0; i < n; ++i) schedule.chunk[j][i] = uniform;
    }
  } else {
    double positive_mass = 0.0;
    for (double& v : alpha) {
      if (v < 0.0) {
        // MI's closed form is infeasible here; clamp and renormalize below.
        if (v < -1e-9 * w_total) schedule.clamped = true;
        v = 0.0;
      }
      positive_mass += v;
    }
    const double scale = positive_mass > 0.0 ? w_total / positive_mass : 0.0;
    for (std::size_t j = 0; j < x; ++j) {
      for (std::size_t i = 0; i < n; ++i) schedule.chunk[j][i] = alpha[var(j, i)] * scale;
    }
  }

  // Predicted makespan under MI's own (zero-latency) model: worker 0's finish.
  double arrival0 = 0.0;
  for (std::size_t v = 0; v <= var(0, std::size_t{0}); ++v) {
    arrival0 += schedule.chunk[v / n][v % n] / platform.worker(v % n).bandwidth;
  }
  double compute0 = 0.0;
  for (std::size_t k = 0; k < x; ++k) compute0 += schedule.chunk[k][0] / platform.worker(0).speed;
  schedule.predicted_makespan = arrival0 + compute0;
  return schedule;
}

std::unique_ptr<sim::SchedulerPolicy> make_mi_policy(const platform::StarPlatform& platform,
                                                     double w_total, std::size_t installments) {
  const MiSchedule schedule = solve_multi_installment(platform, w_total, installments);
  return std::make_unique<StaticSequencePolicy>("MI-" + std::to_string(installments),
                                                schedule.to_plan());
}

}  // namespace rumr::baselines
