#pragma once

/// \file loop_scheduling.hpp
/// The classic loop self-scheduling family, adapted to divisible loads.
///
/// Factoring (factoring.hpp) is one member of a family of decreasing-chunk
/// self-schedulers developed for parallel loops; the RUMR paper's related
/// work points at this literature ([14, 15, 20]). This module implements the
/// other canonical members so the evaluation can position RUMR against the
/// whole family:
///
///   - CSS  (Chunk Self-Scheduling, Kruskal & Weiss 1985): fixed chunks of a
///     caller-chosen size k (FSC in fsc.hpp picks k optimally).
///   - GSS  (Guided Self-Scheduling, Polychronopoulos & Kuck 1987): each
///     dispatched chunk takes a 1/N fraction of the *remaining* work —
///     chunks decrease per-dispatch rather than per-batch.
///   - TSS  (Trapezoid Self-Scheduling, Tzen & Ni 1993): chunk sizes decay
///     linearly from a first size f (default W/(2N)) to a last size l
///     (default 1 work unit), which bounds the number of dispatches while
///     keeping a decreasing tail.
///   - WF   (Weighted Factoring, Flynn Hummel et al. 1996): factoring
///     batches, but each worker's share of a batch is proportional to its
///     speed — the natural heterogeneous generalization of Factoring.
///
/// All run under the same greedy self-scheduled dispatch as Factoring
/// (SelfSchedulingPolicy), so comparisons isolate the chunk-size rule.

#include <memory>
#include <vector>

#include "baselines/factoring.hpp"
#include "platform/platform.hpp"

namespace rumr::baselines {

/// GSS chunk sequence: chunk_k = max(remaining / N, min_chunk) until the
/// workload is exhausted. Sums exactly to w_total.
[[nodiscard]] std::vector<double> gss_chunks(double w_total, std::size_t num_workers,
                                             double min_chunk = 0.0);

/// TSS parameters. Defaults follow Tzen & Ni: first = W/(2N), decreasing to
/// `last` over the resulting dispatch count.
struct TssOptions {
  double first = 0.0;  ///< First chunk size; <= 0 selects W/(2N).
  double last = 1.0;   ///< Final chunk size (work units). Must be > 0.
};

/// TSS chunk sequence: linear decay from `first` to `last`. Sums exactly to
/// w_total (the final chunk absorbs rounding).
[[nodiscard]] std::vector<double> tss_chunks(double w_total, std::size_t num_workers,
                                             const TssOptions& options = {});

/// Weighted-factoring chunk assignment: like factoring_chunks, but each
/// batch is split across workers proportionally to `weights` (typically the
/// worker speeds). Returns per-dispatch (worker, chunk) pairs in batch
/// order. Sums exactly to w_total.
[[nodiscard]] std::vector<std::pair<std::size_t, double>> weighted_factoring_chunks(
    double w_total, const std::vector<double>& weights, const FactoringOptions& options = {});

/// GSS as a runnable policy.
class GssPolicy : public SelfSchedulingPolicy {
 public:
  GssPolicy(double w_total, std::size_t num_workers, double min_chunk = 0.0);
};

/// TSS as a runnable policy.
class TssPolicy : public SelfSchedulingPolicy {
 public:
  TssPolicy(double w_total, std::size_t num_workers, const TssOptions& options = {});
};

/// CSS with a fixed chunk size k.
class CssPolicy : public SelfSchedulingPolicy {
 public:
  CssPolicy(double w_total, std::size_t num_workers, double chunk_size);
};

/// Weighted Factoring: speed-proportional batch shares, greedy dispatch that
/// respects each chunk's designated worker.
class WeightedFactoringPolicy : public sim::SchedulerPolicy {
 public:
  WeightedFactoringPolicy(const platform::StarPlatform& platform, double w_total,
                          const FactoringOptions& options = {});

  /// Restricted to an explicit worker subset with explicit weights
  /// (weights[k] belongs to platform worker workers[k]). Used by RUMR's
  /// phase 2 on heterogeneous platforms.
  WeightedFactoringPolicy(double w_total, std::vector<std::size_t> workers,
                          const std::vector<double>& weights,
                          const FactoringOptions& options = {});

  [[nodiscard]] std::string_view name() const override { return "WF"; }
  std::optional<sim::Dispatch> next_dispatch(const sim::MasterContext& ctx) override;
  [[nodiscard]] bool finished() const override { return cursor_ >= plan_.size(); }
  [[nodiscard]] double total_work() const override { return total_work_; }

  [[nodiscard]] const std::vector<std::pair<std::size_t, double>>& plan() const noexcept {
    return plan_;
  }

 private:
  std::vector<std::pair<std::size_t, double>> plan_;
  std::size_t cursor_ = 0;
  double total_work_ = 0.0;
};

/// Factories mirroring make_factoring_policy: floors default to the
/// empty-round overhead so continuous loads terminate sensibly.
[[nodiscard]] std::unique_ptr<sim::SchedulerPolicy> make_gss_policy(
    const platform::StarPlatform& platform, double w_total);
[[nodiscard]] std::unique_ptr<sim::SchedulerPolicy> make_tss_policy(
    const platform::StarPlatform& platform, double w_total);
[[nodiscard]] std::unique_ptr<sim::SchedulerPolicy> make_css_policy(
    const platform::StarPlatform& platform, double w_total, double chunk_size);
[[nodiscard]] std::unique_ptr<sim::SchedulerPolicy> make_weighted_factoring_policy(
    const platform::StarPlatform& platform, double w_total);

}  // namespace rumr::baselines
