#pragma once

/// \file multi_installment.hpp
/// Multi-Installment divisible-load scheduling (Bharadwaj, Ghose, Mani &
/// Robertazzi, 1996, ch. 10) — the "MI-x" competitor in the RUMR paper.
///
/// MI computes, for a *zero-latency* star platform, the per-installment chunk
/// sizes such that (a) every installment after the first arrives at its
/// worker exactly when the previous one finishes computing (just-in-time),
/// and (b) all workers finish simultaneously. Unlike UMR, chunks within an
/// installment are not uniform, installment count `x` is an input (the paper
/// instantiates MI-1..MI-4 because MI has no way to pick x), and latencies
/// are not modeled — which is precisely the handicap it suffers when the
/// schedule executes on a platform that does have latencies.
///
/// With x = 1 this degenerates to the classical one-round divisible-load
/// solution (the paper's single-round competitor [11] family): chunk sizes
/// form a decreasing geometric sequence with ratio B/(B+S) on homogeneous
/// platforms.
///
/// The just-in-time/simultaneous-finish conditions form an (N*x) x (N*x)
/// linear system, solved with the in-repo dense LU (`rumr::linalg`).

#include <cstddef>
#include <memory>
#include <vector>

#include "platform/platform.hpp"
#include "sim/policy.hpp"

namespace rumr::baselines {

/// A solved MI schedule.
struct MiSchedule {
  std::size_t installments = 0;
  /// chunk[j][i]: installment j's chunk for worker i (workload units).
  std::vector<std::vector<double>> chunk;
  /// True when the raw linear solution contained negative chunks that were
  /// clamped to zero (the remaining mass is renormalized). MI is infeasible
  /// in its pure form for such configurations.
  bool clamped = false;
  /// Predicted makespan under the zero-latency model MI assumes.
  double predicted_makespan = 0.0;

  /// Flattens to the dispatch order MI uses: installments outer, workers
  /// inner (worker 0 first).
  [[nodiscard]] std::vector<sim::Dispatch> to_plan() const;

  /// Sum of all chunks.
  [[nodiscard]] double total() const;
};

/// Solves the MI-x schedule for `w_total` units on `platform`.
///
/// Only the speeds and bandwidths of the platform are used (MI models no
/// latencies). Heterogeneous platforms are supported by the same linear
/// system. Throws std::invalid_argument for x == 0 or w_total <= 0.
[[nodiscard]] MiSchedule solve_multi_installment(const platform::StarPlatform& platform,
                                                 double w_total, std::size_t installments);

/// Convenience: MI-x as a ready-to-simulate policy (a static sequence).
[[nodiscard]] std::unique_ptr<sim::SchedulerPolicy> make_mi_policy(
    const platform::StarPlatform& platform, double w_total, std::size_t installments);

}  // namespace rumr::baselines
