#include "baselines/fsc.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace rumr::baselines {

namespace {

/// Equal chunks of size `chunk` covering w_total (last chunk may be smaller,
/// with a vanishing remainder absorbed).
std::vector<double> equal_chunks(double w_total, double chunk) {
  std::vector<double> chunks;
  double remaining = w_total;
  const double epsilon = 1e-12 * w_total;
  while (remaining > epsilon) {
    double take = std::min(chunk, remaining);
    if (remaining - take < 1e-9 * w_total) take = remaining;
    chunks.push_back(take);
    remaining -= take;
  }
  return chunks;
}

}  // namespace

double fsc_chunk_size(const platform::StarPlatform& platform, double w_total, double error) {
  const auto n = static_cast<double>(platform.size());
  const double one_round = w_total / n;
  if (!(error > 0.0)) return one_round;

  const double overhead = empty_round_overhead_work(platform);
  if (overhead <= 0.0) {
    // No per-chunk overhead: smaller is strictly better; bound by the same
    // internal floor factoring uses so the run stays finite.
    return std::max(1e-4 * w_total / n, 1e-6 * w_total);
  }
  const double sigma = error;  // Work-unit spread of one unit of work.
  const double log_n = std::log(std::max(n, 2.0));
  const double raw =
      std::pow(std::numbers::sqrt2 * w_total * overhead / (sigma * n * std::sqrt(log_n)),
               2.0 / 3.0);
  return std::clamp(raw, std::min(overhead, one_round), one_round);
}

FscPolicy::FscPolicy(const platform::StarPlatform& platform, double w_total, double error)
    : SelfSchedulingPolicy("FSC", equal_chunks(w_total, fsc_chunk_size(platform, w_total, error)),
                           platform.size()) {}

std::unique_ptr<sim::SchedulerPolicy> make_fsc_policy(const platform::StarPlatform& platform,
                                                      double w_total, double error) {
  return std::make_unique<FscPolicy>(platform, w_total, error);
}

}  // namespace rumr::baselines
