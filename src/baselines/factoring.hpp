#pragma once

/// \file factoring.hpp
/// Factoring self-scheduling (Flynn Hummel, CACM 35(8), 1992) — the
/// robustness-oriented competitor in the RUMR paper, and RUMR's phase 2.
///
/// Factoring allocates work in *batches*: each batch hands every one of the
/// N workers an equal chunk sized `remaining / (f * N)` (factor f, classically
/// 2, i.e. each batch schedules half the remaining work). Chunk sizes thus
/// decrease geometrically, which bounds the absolute impact of prediction
/// errors on the final chunks. Dispatch is greedy self-scheduling: a worker
/// gets its next chunk only when it has none outstanding — so factoring makes
/// no use of predictions at all, but also achieves little communication/
/// computation overlap (the paper's argument for combining it with UMR).
///
/// For continuous (divisible) workloads a lower bound on chunk size is
/// required to terminate; RUMR section 4.2 (design choice iii) bounds chunks
/// below by (cLat + nLat*N)/error when the error magnitude is known and by
/// (cLat + nLat*N) otherwise (following Hagerup 1997).

#include <memory>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "sim/policy.hpp"

namespace rumr::baselines {

/// Overhead, in seconds, of sending one round of empty chunks: the
/// non-hidden latencies to send N messages plus starting the computation for
/// the last processor (paper section 4.2). Uses mean latencies on
/// heterogeneous platforms.
[[nodiscard]] double empty_round_overhead_seconds(const platform::StarPlatform& platform);

/// `empty_round_overhead_seconds` converted to workload units via the mean
/// worker speed, so it is commensurable with chunk sizes.
[[nodiscard]] double empty_round_overhead_work(const platform::StarPlatform& platform);

/// Base for policies that dispatch a precomputed queue of chunk sizes
/// greedily to idle workers (pure self-scheduling: a worker is fed only when
/// it has no outstanding chunk).
class SelfSchedulingPolicy : public sim::SchedulerPolicy {
 public:
  /// Feeds chunks to workers 0..num_workers-1.
  SelfSchedulingPolicy(std::string name, std::vector<double> chunks, std::size_t num_workers);

  /// Feeds chunks to an explicit worker subset (platform indices). Used by
  /// RUMR so phase 2 stays on the workers phase 1 selected.
  SelfSchedulingPolicy(std::string name, std::vector<double> chunks,
                       std::vector<std::size_t> workers);

  [[nodiscard]] std::string_view name() const override { return name_; }
  std::optional<sim::Dispatch> next_dispatch(const sim::MasterContext& ctx) override;
  [[nodiscard]] bool finished() const override { return cursor_ >= chunks_.size(); }
  [[nodiscard]] double total_work() const override { return total_work_; }

  /// The precomputed chunk-size sequence, for inspection/testing.
  [[nodiscard]] const std::vector<double>& chunk_sequence() const noexcept { return chunks_; }

  /// How many chunks a worker may have outstanding before it stops being fed.
  /// 1 (default) is pure request-driven self-scheduling: a worker gets its
  /// next chunk only when fully idle — no communication/computation overlap,
  /// which is the paper's criticism of Factoring. 2 prefetches one chunk
  /// while the current one computes (RUMR's phase 2 uses this, hiding the
  /// dispatch latency under the tail of phase 1).
  void set_max_outstanding(std::size_t max_outstanding) noexcept {
    max_outstanding_ = max_outstanding == 0 ? 1 : max_outstanding;
  }
  [[nodiscard]] std::size_t max_outstanding() const noexcept { return max_outstanding_; }

 private:
  std::string name_;
  std::vector<double> chunks_;
  std::size_t cursor_ = 0;
  std::vector<std::size_t> workers_;
  double total_work_ = 0.0;
  std::size_t max_outstanding_ = 1;
};

/// Options for the factoring chunk-size sequence.
struct FactoringOptions {
  double factor = 2.0;     ///< f: each batch schedules 1/f of the remaining work.
  double min_chunk = 0.0;  ///< Lower bound on chunk size (workload units).
};

/// Computes the factoring chunk-size sequence for `w_total` units over
/// `num_workers` workers. The sequence sums exactly to w_total.
[[nodiscard]] std::vector<double> factoring_chunks(double w_total, std::size_t num_workers,
                                                   const FactoringOptions& options = {});

/// The Factoring policy: precomputed decreasing chunks, greedy dispatch.
class FactoringPolicy : public SelfSchedulingPolicy {
 public:
  FactoringPolicy(double w_total, std::size_t num_workers, const FactoringOptions& options = {});
  /// Restricted to an explicit worker subset (platform indices).
  FactoringPolicy(double w_total, std::vector<std::size_t> workers,
                  const FactoringOptions& options = {});
};

/// Factoring configured as the paper's standalone competitor on a given
/// platform: unknown error, so the chunk floor is (cLat + nLat*N) converted
/// to work units.
[[nodiscard]] std::unique_ptr<sim::SchedulerPolicy> make_factoring_policy(
    const platform::StarPlatform& platform, double w_total);

}  // namespace rumr::baselines
