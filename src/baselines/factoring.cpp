#include "baselines/factoring.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace rumr::baselines {

double empty_round_overhead_seconds(const platform::StarPlatform& platform) {
  const auto n = static_cast<double>(platform.size());
  double mean_clat = 0.0;
  double mean_nlat = 0.0;
  for (const platform::WorkerSpec& w : platform.workers()) {
    mean_clat += w.comp_latency;
    mean_nlat += w.comm_latency;
  }
  mean_clat /= n;
  mean_nlat /= n;
  return mean_clat + mean_nlat * n;
}

double empty_round_overhead_work(const platform::StarPlatform& platform) {
  const double mean_speed = platform.total_speed() / static_cast<double>(platform.size());
  return empty_round_overhead_seconds(platform) * mean_speed;
}

namespace {

std::vector<std::size_t> iota_workers(std::size_t n) {
  std::vector<std::size_t> workers(n);
  for (std::size_t i = 0; i < n; ++i) workers[i] = i;
  return workers;
}

}  // namespace

SelfSchedulingPolicy::SelfSchedulingPolicy(std::string name, std::vector<double> chunks,
                                           std::size_t num_workers)
    : SelfSchedulingPolicy(std::move(name), std::move(chunks), iota_workers(num_workers)) {}

SelfSchedulingPolicy::SelfSchedulingPolicy(std::string name, std::vector<double> chunks,
                                           std::vector<std::size_t> workers)
    : name_(std::move(name)), workers_(std::move(workers)) {
  if (workers_.empty()) throw std::invalid_argument("self-scheduling needs >= 1 worker");
  chunks_.reserve(chunks.size());
  for (double c : chunks) {
    if (c > 0.0) {
      chunks_.push_back(c);
      total_work_ += c;
    }
  }
}

std::optional<sim::Dispatch> SelfSchedulingPolicy::next_dispatch(const sim::MasterContext& ctx) {
  if (cursor_ >= chunks_.size()) return std::nullopt;

  // Self-scheduling: feed only alive workers below the outstanding cap (1 =
  // pure request-driven, 2 = one-chunk prefetch). Among eligible workers
  // prefer the least loaded, then the one idle the longest (earliest
  // completion; subset order initially), matching a FIFO request queue.
  std::size_t best = workers_.size();
  std::size_t best_outstanding = 0;
  double best_completion = 0.0;
  bool any_alive_in_subset = false;
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    const sim::WorkerStatus& st = ctx.worker_status(workers_[k]);
    if (!st.alive) continue;
    any_alive_in_subset = true;
    if (st.outstanding >= max_outstanding_) continue;
    const bool better = best == workers_.size() || st.outstanding < best_outstanding ||
                        (st.outstanding == best_outstanding &&
                         st.last_completion < best_completion);
    if (better) {
      best = k;
      best_outstanding = st.outstanding;
      best_completion = st.last_completion;
    }
  }
  if (best < workers_.size()) return sim::Dispatch{workers_[best], chunks_[cursor_++]};
  if (any_alive_in_subset) return std::nullopt;  // Everyone loaded: wait.

  // Fault fallback: the whole subset is fenced. Rather than strand the
  // remaining chunks, feed the soonest-ready alive worker anywhere on the
  // platform (RUMR phase 2 thereby escapes a dead phase-1 selection).
  std::size_t fallback = ctx.num_workers();
  for (std::size_t w = 0; w < ctx.num_workers(); ++w) {
    const sim::WorkerStatus& st = ctx.worker_status(w);
    if (!st.alive) continue;
    if (fallback == ctx.num_workers() ||
        st.predicted_ready < ctx.worker_status(fallback).predicted_ready) {
      fallback = w;
    }
  }
  if (fallback == ctx.num_workers()) return std::nullopt;  // All dead: wait/strand.
  return sim::Dispatch{fallback, chunks_[cursor_++]};
}

std::vector<double> factoring_chunks(double w_total, std::size_t num_workers,
                                     const FactoringOptions& options) {
  if (!(w_total > 0.0)) return {};
  if (num_workers == 0) throw std::invalid_argument("factoring needs >= 1 worker");
  if (!(options.factor > 1.0)) throw std::invalid_argument("factoring factor must exceed 1");

  const auto n = static_cast<double>(num_workers);
  // A strictly positive floor is needed for termination on continuous loads;
  // 1e-6 of the workload is far below any overhead-relevant size.
  const double floor_chunk = std::max(options.min_chunk, 1e-6 * w_total);
  const double epsilon = 1e-12 * w_total;

  std::vector<double> chunks;
  double remaining = w_total;
  while (remaining > epsilon) {
    const double batch_chunk = std::max(remaining / (options.factor * n), floor_chunk);
    for (std::size_t i = 0; i < num_workers && remaining > epsilon; ++i) {
      double take = std::min(batch_chunk, remaining);
      // Absorb a vanishing remainder into this chunk instead of emitting a
      // degenerate extra one.
      if (remaining - take < 0.5 * floor_chunk) take = remaining;
      chunks.push_back(take);
      remaining -= take;
    }
  }
  return chunks;
}

FactoringPolicy::FactoringPolicy(double w_total, std::size_t num_workers,
                                 const FactoringOptions& options)
    : SelfSchedulingPolicy("Factoring", factoring_chunks(w_total, num_workers, options),
                           num_workers) {}

FactoringPolicy::FactoringPolicy(double w_total, std::vector<std::size_t> workers,
                                 const FactoringOptions& options)
    // Note: `workers` is passed by value (not moved) because the first
    // argument reads workers.size() and evaluation order is unspecified.
    : SelfSchedulingPolicy("Factoring", factoring_chunks(w_total, workers.size(), options),
                           workers) {}

std::unique_ptr<sim::SchedulerPolicy> make_factoring_policy(
    const platform::StarPlatform& platform, double w_total) {
  FactoringOptions options;
  options.min_chunk = empty_round_overhead_work(platform);
  return std::make_unique<FactoringPolicy>(w_total, platform.size(), options);
}

}  // namespace rumr::baselines
