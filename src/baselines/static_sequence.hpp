#pragma once

/// \file static_sequence.hpp
/// Policy adapter for precomputed schedules.
///
/// Algorithms that precalculate the entire schedule at the onset of the
/// application (MI-x, plain UMR) reduce, at execution time, to replaying a
/// fixed dispatch sequence as fast as the uplink allows. This policy does
/// exactly that: it never waits and never reacts to completions.

#include <string>
#include <utility>
#include <vector>

#include "sim/policy.hpp"

namespace rumr::baselines {

/// Replays a fixed sequence of dispatches in order.
class StaticSequencePolicy : public sim::SchedulerPolicy {
 public:
  /// `plan` is dispatched front to back. Chunks must be positive; zero-sized
  /// entries are dropped (a solver may legitimately produce them).
  StaticSequencePolicy(std::string name, std::vector<sim::Dispatch> plan);

  [[nodiscard]] std::string_view name() const override { return name_; }
  std::optional<sim::Dispatch> next_dispatch(const sim::MasterContext& ctx) override;
  [[nodiscard]] bool finished() const override { return cursor_ >= plan_.size(); }
  [[nodiscard]] double total_work() const override { return total_work_; }

  [[nodiscard]] const std::vector<sim::Dispatch>& plan() const noexcept { return plan_; }

 private:
  std::string name_;
  std::vector<sim::Dispatch> plan_;
  std::size_t cursor_ = 0;
  double total_work_ = 0.0;
};

}  // namespace rumr::baselines
