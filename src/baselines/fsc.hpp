#pragma once

/// \file fsc.hpp
/// Fixed-Size Chunking (Kruskal & Weiss 1985, as studied experimentally by
/// Hagerup, JPDC 47, 1997).
///
/// FSC is "optimized self-scheduling": all chunks share one size, chosen to
/// balance per-chunk overhead against end-of-run imbalance. We use the
/// Kruskal-Weiss optimum adapted to divisible loads:
///
///     c* = ( sqrt(2) * W * h / (sigma * N * sqrt(ln N)) )^(2/3)
///
/// with W the total workload, h the per-chunk overhead in work units
/// ((cLat + nLat*N) * S), N the worker count, and sigma the absolute
/// execution-time spread of a unit of work (error * S seconds, i.e. `error`
/// work units). The RUMR paper measured FSC, found it dominated by Factoring
/// in most experiments and omitted it from the plots; we include it as an
/// extension and reproduce that domination.

#include <memory>

#include "baselines/factoring.hpp"
#include "platform/platform.hpp"

namespace rumr::baselines {

/// Computes the FSC chunk size for the given configuration, clamped into
/// [min_chunk_floor, W/N]. `error` <= 0 (no uncertainty) yields W/N (a single
/// round, the overhead-optimal choice when nothing can go wrong).
[[nodiscard]] double fsc_chunk_size(const platform::StarPlatform& platform, double w_total,
                                    double error);

/// The FSC policy: equal chunks of the Kruskal-Weiss size, greedy
/// self-scheduled dispatch (same mechanics as Factoring).
class FscPolicy : public SelfSchedulingPolicy {
 public:
  FscPolicy(const platform::StarPlatform& platform, double w_total, double error);
};

/// Factory matching make_factoring_policy.
[[nodiscard]] std::unique_ptr<sim::SchedulerPolicy> make_fsc_policy(
    const platform::StarPlatform& platform, double w_total, double error);

}  // namespace rumr::baselines
