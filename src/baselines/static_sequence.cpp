#include "baselines/static_sequence.hpp"

#include <algorithm>

namespace rumr::baselines {

StaticSequencePolicy::StaticSequencePolicy(std::string name, std::vector<sim::Dispatch> plan)
    : name_(std::move(name)) {
  plan_.reserve(plan.size());
  for (const sim::Dispatch& d : plan) {
    if (d.chunk > 0.0) {
      plan_.push_back(d);
      total_work_ += d.chunk;
    }
  }
}

std::optional<sim::Dispatch> StaticSequencePolicy::next_dispatch(const sim::MasterContext&) {
  if (cursor_ >= plan_.size()) return std::nullopt;
  return plan_[cursor_++];
}

}  // namespace rumr::baselines
