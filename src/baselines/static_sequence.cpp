#include "baselines/static_sequence.hpp"

#include <algorithm>

namespace rumr::baselines {

StaticSequencePolicy::StaticSequencePolicy(std::string name, std::vector<sim::Dispatch> plan)
    : name_(std::move(name)) {
  plan_.reserve(plan.size());
  for (const sim::Dispatch& d : plan) {
    if (d.chunk > 0.0) {
      plan_.push_back(d);
      total_work_ += d.chunk;
    }
  }
}

std::optional<sim::Dispatch> StaticSequencePolicy::next_dispatch(const sim::MasterContext& ctx) {
  if (cursor_ >= plan_.size()) return std::nullopt;
  sim::Dispatch next = plan_[cursor_];
  // Fault fallback: a precalculated schedule has no feedback loop, so a plan
  // entry aimed at a fenced worker is redirected to the soonest-ready alive
  // worker (the dead worker's share is redistributed, not stranded).
  // Out-of-range plan entries pass through so the engine can reject them.
  if (next.worker < ctx.num_workers() && !ctx.worker_status(next.worker).alive) {
    std::size_t fallback = ctx.num_workers();
    for (std::size_t w = 0; w < ctx.num_workers(); ++w) {
      const sim::WorkerStatus& st = ctx.worker_status(w);
      if (!st.alive) continue;
      if (fallback == ctx.num_workers() ||
          st.predicted_ready < ctx.worker_status(fallback).predicted_ready) {
        fallback = w;
      }
    }
    if (fallback == ctx.num_workers()) return std::nullopt;  // All dead: wait.
    next.worker = fallback;
  }
  ++cursor_;
  return next;
}

}  // namespace rumr::baselines
