#pragma once

/// \file ascii_plot.hpp
/// Terminal line plots: renders a SeriesSet onto a character grid with axes,
/// tick labels, and a legend — how the bench harnesses show the paper's
/// figures without a graphics stack. CSV output (csv.hpp) carries the exact
/// numbers for external plotting.

#include <cstddef>
#include <limits>
#include <string>

#include "report/series.hpp"

namespace rumr::report {

/// Plot dimensions and options.
struct PlotOptions {
  std::size_t width = 72;    ///< Plot-area columns (excl. axis labels).
  std::size_t height = 22;   ///< Plot-area rows.
  bool include_legend = true;
  /// Force the y range; NaN means auto (with a small margin).
  double y_min = std::numeric_limits<double>::quiet_NaN();
  double y_max = std::numeric_limits<double>::quiet_NaN();
};

/// Renders the set as an ASCII chart. Each series gets a distinct glyph
/// (assigned in order: * + o x # @ % &); points are connected by linear
/// interpolation across columns.
[[nodiscard]] std::string render_plot(const SeriesSet& set, const PlotOptions& options = {});

}  // namespace rumr::report
