#include "report/series.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rumr::report {

const Series* SeriesSet::find(const std::string& name) const {
  for (const Series& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

namespace {

template <typename Select, typename Reduce>
double fold(const SeriesSet& set, Select select, Reduce reduce, double init) {
  double acc = init;
  for (const Series& s : set.series) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      const double v = select(s, i);
      // NaN/inf points must not poison the range: they are skipped when
      // plotting, so they are skipped when ranging too. A set with no finite
      // point at all returns `init` (±inf), which render_plot treats as
      // "(no data)".
      if (!std::isfinite(v)) continue;
      acc = reduce(acc, v);
    }
  }
  return acc;
}

}  // namespace

double SeriesSet::min_x() const {
  return fold(
      *this, [](const Series& s, std::size_t i) { return s.x[i]; },
      [](double a, double b) { return std::min(a, b); }, std::numeric_limits<double>::infinity());
}

double SeriesSet::max_x() const {
  return fold(
      *this, [](const Series& s, std::size_t i) { return s.x[i]; },
      [](double a, double b) { return std::max(a, b); },
      -std::numeric_limits<double>::infinity());
}

double SeriesSet::min_y() const {
  return fold(
      *this, [](const Series& s, std::size_t i) { return s.y[i]; },
      [](double a, double b) { return std::min(a, b); }, std::numeric_limits<double>::infinity());
}

double SeriesSet::max_y() const {
  return fold(
      *this, [](const Series& s, std::size_t i) { return s.y[i]; },
      [](double a, double b) { return std::max(a, b); },
      -std::numeric_limits<double>::infinity());
}

bool SeriesSet::empty() const noexcept {
  for (const Series& s : series) {
    if (s.size() > 0) return false;
  }
  return true;
}

}  // namespace rumr::report
