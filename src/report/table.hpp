#pragma once

/// \file table.hpp
/// Aligned plain-text tables for reproducing the paper's Tables 2 and 3 in
/// terminal output.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rumr::report {

/// Column alignment.
enum class Align : unsigned char { kLeft, kRight };

/// Simple fixed-grid text table.
class TextTable {
 public:
  /// Creates a table with the given column headers (all right-aligned except
  /// the first, matching the paper's layout; override with set_alignment).
  explicit TextTable(std::vector<std::string> headers);

  /// Overrides one column's alignment.
  void set_alignment(std::size_t column, Align align);

  /// Appends a row; missing trailing cells render empty, extra cells are an
  /// error (assert).
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row(const std::string& head, const std::vector<double>& values, int precision = 2);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Renders with a header separator and column padding.
  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by report pieces).
[[nodiscard]] std::string format_double(double value, int precision = 2);

}  // namespace rumr::report
