#include "report/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <vector>

namespace rumr::report {

namespace {

constexpr const char* kGlyphs = "*+ox#@%&";

/// Linear interpolation of a series at x (clamped to the series range); NaN
/// for an empty series.
double sample_series(const Series& s, double x) {
  if (s.size() == 0) return std::numeric_limits<double>::quiet_NaN();
  if (x <= s.x.front()) return s.y.front();
  if (x >= s.x.back()) return s.y.back();
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (x <= s.x[i]) {
      const double t = (x - s.x[i - 1]) / (s.x[i] - s.x[i - 1]);
      return s.y[i - 1] + t * (s.y[i] - s.y[i - 1]);
    }
  }
  return s.y.back();
}

}  // namespace

std::string render_plot(const SeriesSet& set, const PlotOptions& options) {
  if (set.empty() || options.width == 0 || options.height == 0) {
    return "(no data)\n";
  }

  const double x_lo = set.min_x();
  const double x_hi = set.max_x();
  double y_lo = std::isnan(options.y_min) ? set.min_y() : options.y_min;
  double y_hi = std::isnan(options.y_max) ? set.max_y() : options.y_max;
  // min/max skip non-finite points, so an all-NaN/inf set leaves the ranges
  // at ±infinity — there is nothing finite to draw.
  if (!std::isfinite(x_lo) || !std::isfinite(x_hi) || !std::isfinite(y_lo) ||
      !std::isfinite(y_hi)) {
    return "(no data)\n";
  }
  if (std::isnan(options.y_min) || std::isnan(options.y_max)) {
    const double margin = 0.05 * std::max(1e-12, y_hi - y_lo);
    if (std::isnan(options.y_min)) y_lo -= margin;
    if (std::isnan(options.y_max)) y_hi += margin;
  }
  if (y_hi <= y_lo) y_hi = y_lo + 1.0;
  const double x_span = x_hi > x_lo ? x_hi - x_lo : 1.0;
  // width/height of 1 leave zero sampling intervals; clamp the divisors so a
  // single-column/-row plot degenerates to the low end of the range instead
  // of dividing by zero.
  const double col_span = options.width > 1 ? static_cast<double>(options.width - 1) : 1.0;
  const double row_span = options.height > 1 ? static_cast<double>(options.height - 1) : 1.0;

  std::vector<std::string> grid(options.height, std::string(options.width, ' '));
  const auto row_of = [&](double y) -> std::ptrdiff_t {
    const double t = (y - y_lo) / (y_hi - y_lo);
    return static_cast<std::ptrdiff_t>(std::lround((1.0 - t) * row_span));
  };

  for (std::size_t s = 0; s < set.series.size(); ++s) {
    const char glyph = kGlyphs[s % 8];
    for (std::size_t c = 0; c < options.width; ++c) {
      const double x = x_lo + x_span * static_cast<double>(c) / col_span;
      const double y = sample_series(set.series[s], x);
      // Non-finite samples (a NaN data point, or interpolation through one)
      // leave the column blank; lround on them is undefined.
      if (!std::isfinite(y)) continue;
      const std::ptrdiff_t r = row_of(y);
      if (r >= 0 && r < static_cast<std::ptrdiff_t>(options.height)) {
        grid[static_cast<std::size_t>(r)][c] = glyph;
      }
    }
  }

  std::ostringstream out;
  if (!set.title.empty()) out << set.title << '\n';
  const auto y_label = [&](std::size_t row) {
    const double t = 1.0 - static_cast<double>(row) / row_span;
    std::ostringstream label;
    label << std::setw(8) << std::fixed << std::setprecision(2) << (y_lo + t * (y_hi - y_lo));
    return label.str();
  };
  for (std::size_t r = 0; r < options.height; ++r) {
    const bool tick = r == 0 || r == options.height - 1 || r == options.height / 2;
    out << (tick ? y_label(r) : std::string(8, ' ')) << " |" << grid[r] << '\n';
  }
  out << std::string(8, ' ') << " +" << std::string(options.width, '-') << '\n';
  {
    std::ostringstream xaxis;
    xaxis << std::string(9, ' ') << std::fixed << std::setprecision(2) << x_lo;
    std::string line = xaxis.str();
    std::ostringstream hi_label;
    hi_label << std::fixed << std::setprecision(2) << x_hi;
    const std::size_t target = 10 + options.width - hi_label.str().size();
    if (line.size() < target) line += std::string(target - line.size(), ' ');
    line += hi_label.str();
    out << line << '\n';
  }
  if (!set.x_label.empty() || !set.y_label.empty()) {
    out << std::string(10, ' ') << "x: " << set.x_label << "   y: " << set.y_label << '\n';
  }
  if (options.include_legend) {
    out << std::string(10, ' ');
    for (std::size_t s = 0; s < set.series.size(); ++s) {
      if (s > 0) out << "  ";
      out << kGlyphs[s % 8] << ' ' << set.series[s].name;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace rumr::report
