#include "report/jobs_io.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace rumr::report {

namespace {

void csv_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "nan";
    return;
  }
  std::ostringstream text;
  text.precision(17);
  text << v;
  out << text.str();
}

const char* job_state(const jobs::JobOutcome& job) {
  if (job.rejected) return "rejected";
  if (job.shed) return "shed";
  if (job.completed) return "completed";
  return "in-flight";
}

}  // namespace

void write_jobs_csv(std::ostream& out, const jobs::ServiceResult& result) {
  out << "id,arrival,size,weight,state,start,departure,queue_wait,service_time,"
         "response,best_service,slowdown,work_done,segments\n";
  for (const jobs::JobOutcome& job : result.jobs) {
    out << job.id << ',';
    csv_number(out, job.arrival);
    out << ',';
    csv_number(out, job.size);
    out << ',';
    csv_number(out, job.weight);
    out << ',' << job_state(job) << ',';
    csv_number(out, job.start);
    out << ',';
    csv_number(out, job.departure);
    out << ',';
    csv_number(out, job.queue_wait);
    out << ',';
    csv_number(out, job.service_time);
    out << ',';
    csv_number(out, job.response);
    out << ',';
    csv_number(out, job.best_service);
    out << ',';
    csv_number(out, job.slowdown);
    out << ',';
    csv_number(out, job.work_done);
    out << ',' << job.segments.size() << '\n';
  }
}

std::string jobs_csv(const jobs::ServiceResult& result) {
  std::ostringstream out;
  write_jobs_csv(out, result);
  return out.str();
}

void write_jobs_summary_json(std::ostream& out, const jobs::ServiceResult& result) {
  const auto field = [&out](const char* name, double v, bool last = false) {
    out << '"' << name << "\":";
    if (std::isfinite(v)) {
      std::ostringstream text;
      text.precision(17);
      text << v;
      out << text.str();
    } else {
      out << "null";
    }
    if (!last) out << ',';
  };
  out << '{';
  out << "\"arrived\":" << result.arrived << ",\"admitted\":" << result.admitted
      << ",\"rejected\":" << result.rejected << ",\"shed\":" << result.shed
      << ",\"completed\":" << result.completed << ',';
  field("horizon", result.horizon);
  field("area_jobs_in_system", result.area_jobs_in_system);
  field("total_work", result.total_work);
  field("share_time", result.share_time);
  field("utilization", result.utilization);
  field("share_utilization", result.share_utilization);
  field("offered_load", result.offered_load);
  field("mean_response", result.mean_response());
  field("mean_slowdown", result.mean_slowdown());
  field("mean_queue_wait", result.mean_queue_wait());
  out << "\"manager_events\":" << result.manager_events
      << ",\"oracle_runs\":" << result.oracle_runs
      << ",\"oracle_events\":" << result.oracle_events << ',';
  out << "\"stats\":" << obs::to_json(result.stats);
  out << '}';
}

std::string jobs_summary_json(const jobs::ServiceResult& result) {
  std::ostringstream out;
  write_jobs_summary_json(out, result);
  return out.str();
}

}  // namespace rumr::report
