#pragma once

/// \file csv.hpp
/// CSV emission for sweep results and figures, so external tooling can
/// re-plot the exact numbers the benches print.

#include <iosfwd>
#include <string>

#include "report/series.hpp"

namespace rumr::report {

/// Writes a SeriesSet as long-form CSV: `series,x,y` with a header row.
void write_csv(std::ostream& out, const SeriesSet& set);

/// Same, to a string.
[[nodiscard]] std::string to_csv(const SeriesSet& set);

/// Writes a SeriesSet to `path` (truncating). Returns false on I/O failure.
bool save_csv(const std::string& path, const SeriesSet& set);

/// Escapes a CSV field (quotes it when it contains comma/quote/newline).
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace rumr::report
