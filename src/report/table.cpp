#include "report/table.hpp"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rumr::report {

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  alignment_.assign(headers_.size(), Align::kRight);
  if (!alignment_.empty()) alignment_[0] = Align::kLeft;
}

void TextTable::set_alignment(std::size_t column, Align align) {
  assert(column < alignment_.size());
  alignment_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size() && "row has more cells than columns");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& head, const std::vector<double>& values,
                        int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(head);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_row = [&](std::ostringstream& out, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      const std::size_t pad = widths[c] - cell.size();
      if (c > 0) out << "  ";
      if (alignment_[c] == Align::kRight) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
    }
    out << '\n';
  };

  std::ostringstream out;
  emit_row(out, headers_);
  std::size_t total = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
  for (std::size_t w : widths) total += w;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out.str();
}

void TextTable::print(std::ostream& out) const { out << to_string(); }

}  // namespace rumr::report
