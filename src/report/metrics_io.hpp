#pragma once

/// \file metrics_io.hpp
/// Machine-readable exporters for observability data.
///
/// Two layers:
///   - one run:   obs::RunMetrics already serializes itself (obs/metrics.hpp);
///   - one sweep: the per-cell aggregates (mean/stddev over repetitions of
///     makespan, uplink/worker utilization, DES event counts, head-of-line
///     blocking, re-dispatched work) exported here as long-form CSV — one row
///     per (configuration, error, algorithm) cell — or as a JSON array of
///     cell objects. Both formats carry identical data; CSV feeds plotting
///     scripts, JSON feeds dashboards and regression tooling.

#include <iosfwd>
#include <string>

#include "sweep/runner.hpp"

namespace rumr::report {

/// CSV header + one row per sweep cell:
/// config,error,algorithm,reps,<metric>_mean,<metric>_stddev,...
void write_sweep_metrics_csv(std::ostream& out, const sweep::SweepResult& result);

/// Same, to a string.
[[nodiscard]] std::string sweep_metrics_csv(const sweep::SweepResult& result);

/// JSON array of cell objects with the same fields as the CSV (stable key
/// order, full precision, non-finite values as null).
void write_sweep_metrics_json(std::ostream& out, const sweep::SweepResult& result);

/// Same, to a string.
[[nodiscard]] std::string sweep_metrics_json(const sweep::SweepResult& result);

}  // namespace rumr::report
