#include "report/metrics_io.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace rumr::report {

namespace {

/// The cell metrics exported by both formats, in column order.
struct NamedStat {
  const char* name;
  const stats::Accumulator& acc;
};

std::vector<NamedStat> cell_stats(const sweep::CellStats& cell) {
  return {{"makespan", cell.makespan},
          {"uplink_utilization", cell.uplink_utilization},
          {"worker_utilization", cell.worker_utilization},
          {"events", cell.events},
          {"hol_blocking_time", cell.hol_blocking_time},
          {"work_redispatched", cell.work_redispatched}};
}

void csv_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "nan";
    return;
  }
  std::ostringstream text;
  text.precision(17);
  text << v;
  out << text.str();
}

void json_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  std::ostringstream text;
  text.precision(17);
  text << v;
  out << text.str();
}

/// Minimal JSON string escaping for config labels and algorithm names.
void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c; break;
    }
  }
  out << '"';
}

}  // namespace

void write_sweep_metrics_csv(std::ostream& out, const sweep::SweepResult& result) {
  out << "config,error,algorithm,reps";
  {
    // Header columns from an arbitrary cell (names are static).
    const sweep::CellStats empty;
    for (const NamedStat& s : cell_stats(empty)) {
      out << ',' << s.name << "_mean," << s.name << "_stddev";
    }
  }
  out << '\n';
  for (std::size_t c = 0; c < result.configs().size(); ++c) {
    for (std::size_t e = 0; e < result.errors().size(); ++e) {
      for (std::size_t a = 0; a < result.algorithms().size(); ++a) {
        const sweep::CellStats& cell = result.cell(c, e, a);
        out << '"' << result.configs()[c].label() << "\",";
        csv_number(out, result.errors()[e]);
        out << ',' << result.algorithms()[a] << ',' << cell.reps;
        for (const NamedStat& s : cell_stats(cell)) {
          out << ',';
          csv_number(out, s.acc.mean());
          out << ',';
          csv_number(out, s.acc.stddev());
        }
        out << '\n';
      }
    }
  }
}

std::string sweep_metrics_csv(const sweep::SweepResult& result) {
  std::ostringstream out;
  write_sweep_metrics_csv(out, result);
  return out.str();
}

void write_sweep_metrics_json(std::ostream& out, const sweep::SweepResult& result) {
  out << '[';
  bool first = true;
  for (std::size_t c = 0; c < result.configs().size(); ++c) {
    for (std::size_t e = 0; e < result.errors().size(); ++e) {
      for (std::size_t a = 0; a < result.algorithms().size(); ++a) {
        const sweep::CellStats& cell = result.cell(c, e, a);
        if (!first) out << ',';
        first = false;
        out << "{\"config\":";
        json_string(out, result.configs()[c].label());
        out << ",\"error\":";
        json_number(out, result.errors()[e]);
        out << ",\"algorithm\":";
        json_string(out, result.algorithms()[a]);
        out << ",\"reps\":" << cell.reps;
        for (const NamedStat& s : cell_stats(cell)) {
          out << ",\"" << s.name << "_mean\":";
          json_number(out, s.acc.mean());
          out << ",\"" << s.name << "_stddev\":";
          json_number(out, s.acc.stddev());
        }
        out << '}';
      }
    }
  }
  out << ']';
}

std::string sweep_metrics_json(const sweep::SweepResult& result) {
  std::ostringstream out;
  write_sweep_metrics_json(out, result);
  return out.str();
}

}  // namespace rumr::report
