#pragma once

/// \file series.hpp
/// Named (x, y) data series — the unit of exchange between the sweep results
/// and the plotting/CSV emitters. Each of the paper's figures is a
/// SeriesSet: one series per algorithm, error on the x axis.

#include <cstddef>
#include <string>
#include <vector>

namespace rumr::report {

/// One named polyline.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
};

/// A collection of series sharing axes (one figure).
struct SeriesSet {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<Series> series;

  [[nodiscard]] const Series* find(const std::string& name) const;
  [[nodiscard]] double min_x() const;
  [[nodiscard]] double max_x() const;
  [[nodiscard]] double min_y() const;
  [[nodiscard]] double max_y() const;
  [[nodiscard]] bool empty() const noexcept;
};

}  // namespace rumr::report
