#pragma once

/// \file jobs_io.hpp
/// Machine-readable exporters for multi-job open-system results.
///
/// Two views of one jobs::ServiceResult:
///   - per-job CSV: one row per arrived job with its full timeline
///     (arrival, start, departure, waits, slowdown, segments held) — the
///     long-form record plotting scripts aggregate;
///   - summary JSON: the run-level counters, utilizations, Little's-law
///     area, and the obs::JobsStats histograms (via obs::to_json), for
///     dashboards and regression tooling.

#include <iosfwd>
#include <string>

#include "jobs/job_manager.hpp"

namespace rumr::report {

/// CSV header + one row per arrived job:
/// id,arrival,size,weight,state,start,departure,queue_wait,service_time,
/// response,best_service,slowdown,work_done,segments
void write_jobs_csv(std::ostream& out, const jobs::ServiceResult& result);

/// Same, to a string.
[[nodiscard]] std::string jobs_csv(const jobs::ServiceResult& result);

/// One JSON object: counters, horizon, utilizations, offered load,
/// Little's-law area, oracle effort, and the service-metric histograms.
void write_jobs_summary_json(std::ostream& out, const jobs::ServiceResult& result);

/// Same, to a string.
[[nodiscard]] std::string jobs_summary_json(const jobs::ServiceResult& result);

}  // namespace rumr::report
