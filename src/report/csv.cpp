#include "report/csv.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

namespace rumr::report {

namespace {

/// Stable spelling for every double: the default operator<< prints
/// platform-dependent variants ("nan", "-nan(ind)") for non-finite values.
void csv_number(std::ostream& out, double v) {
  if (std::isnan(v)) {
    out << "nan";
    return;
  }
  if (std::isinf(v)) {
    out << (v > 0.0 ? "inf" : "-inf");
    return;
  }
  out << v;
}

}  // namespace

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

void write_csv(std::ostream& out, const SeriesSet& set) {
  out << "series," << csv_escape(set.x_label.empty() ? "x" : set.x_label) << ','
      << csv_escape(set.y_label.empty() ? "y" : set.y_label) << '\n';
  for (const Series& s : set.series) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      out << csv_escape(s.name) << ',';
      csv_number(out, s.x[i]);
      out << ',';
      csv_number(out, s.y[i]);
      out << '\n';
    }
  }
}

std::string to_csv(const SeriesSet& set) {
  std::ostringstream out;
  write_csv(out, set);
  return out.str();
}

bool save_csv(const std::string& path, const SeriesSet& set) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_csv(out, set);
  return static_cast<bool>(out);
}

}  // namespace rumr::report
